package main

// Tests for the observability surface added in PR 2: the /metrics
// exposition, per-request stage timing diagnostics, request IDs, gate
// statistics under shed load, and the structured access log.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// metricsSeries fetches /metrics and returns its sample lines keyed by
// full series (name + label set), failing the test on any malformed or
// duplicate line.
func metricsSeries(t *testing.T, s *Server) map[string]string {
	t.Helper()
	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
	series := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed exposition line %q", line)
		}
		if _, dup := series[m[1]]; dup {
			t.Fatalf("duplicate series %q", m[1])
		}
		series[m[1]] = m[2]
	}
	return series
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	for i := 0; i < 3; i++ {
		if rec := get(t, s, "/v1/search?K=60&k=5"); rec.Code != http.StatusOK {
			t.Fatalf("search status = %d", rec.Code)
		}
	}
	get(t, s, "/v1/search?k=0") // one 400 for the code label

	series := metricsSeries(t, s)
	if series[`propserve_requests_total{code="200"}`] == "" {
		t.Error("missing propserve_requests_total{code=\"200\"}")
	}
	if series[`propserve_requests_total{code="400"}`] != "1" {
		t.Errorf("requests_total{400} = %q, want 1", series[`propserve_requests_total{code="400"}`])
	}
	// The per-stage histogram must carry the Step 1 / Step 2 stages.
	for _, stage := range []string{"parse", "admission_wait", "retrieve", "step1_pcs", "step1_pss", "step2_select", "encode"} {
		key := `propserve_stage_seconds_count{stage="` + stage + `"}`
		if v := series[key]; v == "" || v == "0" {
			t.Errorf("%s = %q, want ≥ 1", key, v)
		}
	}
	// Gate gauges and counters are present; three searches were admitted.
	for _, key := range []string{
		"propserve_gate_inflight", "propserve_gate_queued", "propserve_gate_capacity",
		"propserve_gate_shed_total", "propserve_gate_queue_timeout_total",
		"propserve_panics_recovered_total",
	} {
		if _, ok := series[key]; !ok {
			t.Errorf("missing %s", key)
		}
	}
	if series["propserve_gate_admitted_total"] != "3" {
		t.Errorf("gate_admitted_total = %q, want 3", series["propserve_gate_admitted_total"])
	}
	if series["propserve_request_seconds_count"] == "" {
		t.Error("missing propserve_request_seconds_count")
	}
}

func TestSearchDiagnosticsStageBreakdown(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/v1/search?K=80&k=8&spatial=exact")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	stages, ok := resp.Diagnostics["stage_ms"].(map[string]any)
	if !ok {
		t.Fatalf("diagnostics missing stage_ms: %v", resp.Diagnostics)
	}
	// The breakdown must match DESIGN.md's decomposition: Step 1 split
	// into pCS and pSS, Step 2 selection, plus the serving stages.
	var sum float64
	for _, stage := range []string{"parse", "admission_wait", "retrieve", "step1_pcs", "step1_pss", "step2_select"} {
		v, ok := stages[stage].(float64)
		if !ok || v < 0 {
			t.Errorf("stage %q missing or negative: %v", stage, stages[stage])
		}
		sum += v
	}
	elapsed, ok := resp.Diagnostics["elapsed_ms"].(float64)
	if !ok {
		t.Fatalf("diagnostics missing elapsed_ms: %v", resp.Diagnostics)
	}
	// Stage times are disjoint slices of the request, so they sum to no
	// more than the wall time (elapsed_ms is read after the stages end;
	// allow rounding slack).
	if sum > elapsed+1 {
		t.Errorf("stage sum %.3fms exceeds elapsed %.3fms", sum, elapsed)
	}
}

func TestRequestIDStableAcrossHeaderAndBody(t *testing.T) {
	s := testServer(t)

	// Success path: the response body echoes the header ID.
	rec := get(t, s, "/v1/search?K=60&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	headerID := rec.Header().Get("X-Request-ID")
	if headerID == "" || resp.RequestID != headerID {
		t.Errorf("body id %q, header id %q; want equal and non-empty", resp.RequestID, headerID)
	}

	// Error path: 4xx responses carry the ID in header and error body.
	rec = get(t, s, "/v1/search?k=0")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	var errBody map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &errBody); err != nil {
		t.Fatal(err)
	}
	if id := rec.Header().Get("X-Request-ID"); id == "" || errBody["request_id"] != id {
		t.Errorf("400 body id %q, header id %q", errBody["request_id"], id)
	}

	// Client-supplied IDs round-trip.
	req := httptest.NewRequest(http.MethodGet, "/v1/search?K=60&k=5", nil)
	req.Header.Set("X-Request-ID", "trace-me-7")
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if rr.Header().Get("X-Request-ID") != "trace-me-7" {
		t.Errorf("client ID not echoed: %q", rr.Header().Get("X-Request-ID"))
	}
}

func TestRequestIDOnPanicPath(t *testing.T) {
	s := testServer(t)
	fired := false
	restore := core.SetCheckpointHook(func(string) {
		if !fired {
			fired = true
			panic("telemetry probe")
		}
	})
	rec := get(t, s, "/v1/search?K=60&k=5")
	restore()
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("panic 500 without X-Request-ID")
	}
	// The recovered panic is visible in /stats and /metrics.
	var stats map[string]any
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["panics_recovered"] != float64(1) {
		t.Errorf("/stats panics_recovered = %v, want 1", stats["panics_recovered"])
	}
	if v := metricsSeries(t, s)["propserve_panics_recovered_total"]; v != "1" {
		t.Errorf("propserve_panics_recovered_total = %q, want 1", v)
	}
}

// TestGateCountersUnderShedLoad saturates a 1-slot, 1-waiter gate and
// verifies the admission counters advance and surface in /stats and
// /metrics.
func TestGateCountersUnderShedLoad(t *testing.T) {
	s := testServerCfg(t, Config{
		MaxInFlight:  1,
		MaxQueue:     1,
		QueueWait:    5 * time.Second,
		QueryTimeout: 30 * time.Second,
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	restore := core.SetCheckpointHook(func(string) {
		once.Do(func() { close(entered) })
		<-release
	})
	defer restore()

	r1 := make(chan *httptest.ResponseRecorder, 1)
	go func() { r1 <- get(t, s, "/v1/search?K=60&k=5") }()
	<-entered // request 1 holds the only slot

	r2 := make(chan *httptest.ResponseRecorder, 1)
	go func() { r2 <- get(t, s, "/v1/search?K=60&k=5") }()
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request 2 never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: requests 3 and 4 shed immediately.
	for i := 0; i < 2; i++ {
		if rec := get(t, s, "/v1/search?K=60&k=5"); rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("saturated status = %d, want 503", rec.Code)
		}
	}
	close(release)
	<-r1
	<-r2

	gs := s.gate.Stats()
	if gs.Admitted != 2 {
		t.Errorf("Admitted = %d, want 2", gs.Admitted)
	}
	if gs.Shed != 2 {
		t.Errorf("Shed = %d, want 2", gs.Shed)
	}
	var stats struct {
		Gate map[string]float64 `json:"gate"`
	}
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Gate["admitted"] != 2 || stats.Gate["shed"] != 2 {
		t.Errorf("/stats gate = %v, want admitted 2, shed 2", stats.Gate)
	}
	series := metricsSeries(t, s)
	if series["propserve_gate_admitted_total"] != "2" || series["propserve_gate_shed_total"] != "2" {
		t.Errorf("metrics: admitted %q shed %q, want 2/2",
			series["propserve_gate_admitted_total"], series["propserve_gate_shed_total"])
	}
	// 503 responses were counted by status code, and the queue-wait
	// histogram saw every admission attempt.
	if series[`propserve_requests_total{code="503"}`] != "2" {
		t.Errorf("requests_total{503} = %q, want 2", series[`propserve_requests_total{code="503"}`])
	}
	if series["propserve_gate_queue_wait_seconds_count"] != "4" {
		t.Errorf("queue_wait count = %q, want 4", series["propserve_gate_queue_wait_seconds_count"])
	}
}

func TestServerAccessLog(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	logw := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.WriteString(string(p))
	})
	s := testServerCfg(t, Config{AccessLog: logw})
	rec := get(t, s, "/v1/search?K=60&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	get(t, s, "/nope")

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("got %d access log lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line not JSON: %v (%q)", err, lines[0])
	}
	if first["path"] != "/v1/search" || first["status"] != float64(200) {
		t.Errorf("first line = %v", first)
	}
	if first["request_id"] != rec.Header().Get("X-Request-ID") {
		t.Errorf("log id %v != response id %q", first["request_id"], rec.Header().Get("X-Request-ID"))
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["status"] != float64(404) {
		t.Errorf("second line = %v", second)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
