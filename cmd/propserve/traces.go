package main

// Tail-based trace retention and the trace API.
//
// Every search/explain/batch/mutation request runs under a hierarchical
// telemetry.Trace; whether the finished trace is kept is decided at
// request END, when the interesting facts — latency, status, shed,
// degradation — are known. Head sampling would throw away exactly the
// traces worth keeping, so retention is: slow/error/shed/degraded
// always, a -trace-sample probabilistic remainder for the healthy fast
// majority. Retained traces land in the tenant's tracestore ring,
// become the SLO tracker's quantile exemplars, and are served by
// GET /v1/traces (+ /{id}); -trace-export mirrors them as JSONL.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/registry"
	"repro/internal/telemetry"
	"repro/internal/tracestore"
)

// startTrace begins the request's trace: a caller-supplied W3C
// traceparent is adopted (the request joins the caller's distributed
// trace), the egress traceparent — this server's trace and span ID — is
// echoed on the response, and the trace is planted in the request
// context for the pipeline stages.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request) (*telemetry.Trace, *http.Request) {
	tr := telemetry.NewTrace()
	if tid, pid, ok := telemetry.ParseTraceParent(r.Header.Get(telemetry.TraceParentHeader)); ok {
		tr.SetRemote(tid, pid)
	}
	w.Header().Set(telemetry.TraceParentHeader, tr.TraceParent())
	return tr, r.WithContext(telemetry.WithTrace(r.Context(), tr))
}

// traceFinish accumulates the facts the retention decision needs as a
// handler runs; finishTrace consumes it exactly once (handlers call it
// explicitly on the success path — so the retained ID can flow into the
// slow-query line — and rely on a deferred call for error and panic
// exits).
type traceFinish struct {
	endpoint  string
	requestID string
	class     string // SLO class used for the slow threshold and exemplar
	status    int    // 0 means the handler never wrote: a recovered panic (500)
	cache     string
	epoch     uint64
	degraded  bool
	exemplar  bool // note the retained ID in the SLO exemplar table
	done      bool
	traceID   string // set by finishTrace when the trace was retained
}

// finishTrace makes the tail-sampling decision for one finished request
// and, when the trace is retained, stores it in the tenant's ring,
// notes it as an SLO exemplar, reports it to the access log (noteCtx
// may be nil — batch elements share their parent's log line), and
// mirrors it to the -trace-export stream. Idempotent per traceFinish.
func (s *Server) finishTrace(noteCtx context.Context, tn *registry.Tenant, tr *telemetry.Trace, start time.Time, fin *traceFinish) {
	if fin.done {
		return
	}
	fin.done = true
	if tn == nil || tn.Traces == nil || tr == nil {
		return
	}
	status := fin.status
	if status == 0 {
		status = http.StatusInternalServerError // recovered panic: middleware writes the 500
	}
	d := time.Since(start)
	reason := s.traceReason(tn, fin.class, status, d, fin.degraded)
	if reason == "" {
		return
	}
	if reason == "sampled" {
		s.tel.tracesSampled.Inc()
	}
	id := tr.ID()
	st := &tracestore.Trace{
		ID:        id,
		RequestID: fin.requestID,
		Corpus:    tn.Name,
		Endpoint:  fin.endpoint,
		Status:    status,
		Reason:    reason,
		Cache:     fin.cache,
		Epoch:     fin.epoch,
		Remote:    tr.RemoteParent(),
		Start:     start,
		Duration:  d,
		Spans:     tr.Spans(),
	}
	tn.Traces.Add(st)
	fin.traceID = id
	if fin.exemplar {
		tn.SLO.NoteExemplar(fin.class, d, id)
	}
	if noteCtx != nil {
		telemetry.NoteTrace(noteCtx, id)
	}
	s.exportTrace(st)
}

// traceReason decides retention: the tail rules always keep the traces
// an operator will be asked about (shed, errored, degraded, served on a
// durability-compromised tenant, or slower than the class objective /
// slow-query threshold); everything else is kept with -trace-sample
// probability. "" means drop.
func (s *Server) traceReason(tn *registry.Tenant, class string, status int, d time.Duration, degraded bool) string {
	switch {
	case status == http.StatusServiceUnavailable:
		return "shed"
	case status >= 500:
		return "error"
	case degraded:
		return "degraded"
	}
	if ws := tn.WALState(); ws == "broken" || ws == "degraded" {
		return "wal"
	}
	slow := tn.SLO.Objective(class).Threshold
	if slow <= 0 || (s.cfg.SlowQuery > 0 && s.cfg.SlowQuery < slow) {
		slow = s.cfg.SlowQuery
	}
	if slow > 0 && d > slow {
		return "slow"
	}
	if p := s.cfg.TraceSample; p > 0 && rand.Float64() < p {
		return "sampled"
	}
	return ""
}

// exportTrace mirrors one retained trace to the -trace-export stream as
// a JSON line (the same object GET /v1/traces/{id} serves), serialising
// concurrent writers so lines never interleave.
func (s *Server) exportTrace(t *tracestore.Trace) {
	out := s.cfg.TraceExport
	if out == nil {
		return
	}
	line, err := json.Marshal(traceJSON(t))
	if err != nil {
		return
	}
	s.traceExpMu.Lock()
	out.Write(append(line, '\n'))
	s.traceExpMu.Unlock()
}

// serverTiming renders the Server-Timing header value: the app total
// first (loadgen and the SLO tests key on the leading entry), then the
// per-stage breakdown from the span tree — retrieve, select
// (step2_select) and render (encode) — so clients see where the time
// went without fetching the trace.
func serverTiming(total time.Duration, tr *telemetry.Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "app;dur=%.4f", float64(total.Nanoseconds())/1e6)
	if tr != nil {
		st := tr.Stages()
		for _, e := range [...]struct{ entry, stage string }{
			{"retrieve", telemetry.StageRetrieve},
			{"select", telemetry.StageSelect},
			{"render", telemetry.StageEncode},
		} {
			if d, ok := st[e.stage]; ok {
				fmt.Fprintf(&b, ", %s;dur=%.4f", e.entry, float64(d.Nanoseconds())/1e6)
			}
		}
	}
	return b.String()
}

// traceJSON renders one retained trace as the /v1/traces/{id} payload:
// identity and outcome up top, the span tree as a flat parent-linked
// list sorted by start offset (span 0 is the request root).
func traceJSON(t *tracestore.Trace) map[string]any {
	spans := make([]map[string]any, 0, len(t.Spans))
	for _, sp := range t.Spans {
		m := map[string]any{
			"id":          sp.ID,
			"parent":      sp.Parent,
			"stage":       sp.Stage,
			"start_ms":    round3(sp.Start.Seconds() * 1e3),
			"duration_ms": round3(sp.Dur.Seconds() * 1e3),
		}
		if len(sp.Attrs) > 0 {
			attrs := make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				attrs[a.Key] = a.Value
			}
			m["attrs"] = attrs
		}
		spans = append(spans, m)
	}
	out := map[string]any{
		"trace_id":     t.ID,
		"request_id":   t.RequestID,
		"corpus":       t.Corpus,
		"endpoint":     t.Endpoint,
		"status":       t.Status,
		"reason":       t.Reason,
		"corpus_epoch": t.Epoch,
		"time":         t.Start.UTC().Format(time.RFC3339Nano),
		"duration_ms":  round3(t.Duration.Seconds() * 1e3),
		"spans":        spans,
	}
	if t.Cache != "" {
		out["cache"] = t.Cache
	}
	if t.Remote != "" {
		out["remote_parent"] = t.Remote
	}
	return out
}

// traceSummaryJSON is one GET /v1/traces list row: everything but the
// span tree.
func traceSummaryJSON(t *tracestore.Trace) map[string]any {
	out := map[string]any{
		"trace_id":    t.ID,
		"request_id":  t.RequestID,
		"corpus":      t.Corpus,
		"endpoint":    t.Endpoint,
		"status":      t.Status,
		"reason":      t.Reason,
		"time":        t.Start.UTC().Format(time.RFC3339Nano),
		"duration_ms": round3(t.Duration.Seconds() * 1e3),
		"spans":       len(t.Spans),
	}
	if t.Cache != "" {
		out["cache"] = t.Cache
	}
	return out
}

// handleTraces serves GET /v1/traces: retained traces across every
// corpus (or one, with ?corpus=), filtered by ?status=, ?reason= and
// ?min_duration_ms=, newest first, capped by ?limit= (default 50).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.cfg.DisableTraces {
		s.writeError(w, http.StatusForbidden, "trace retention disabled: start the server without -traces=false")
		return
	}
	q := r.URL.Query()
	var f tracestore.Filter
	if v := q.Get("status"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 100 || n > 599 {
			s.writeError(w, http.StatusBadRequest, "bad status %q: want an HTTP status code", v)
			return
		}
		f.Status = n
	}
	f.Reason = q.Get("reason")
	if v := q.Get("min_duration_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			s.writeError(w, http.StatusBadRequest, "bad min_duration_ms %q", v)
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	limit := 50
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 1000 {
			s.writeError(w, http.StatusBadRequest, "bad limit %q: want 1..1000", v)
			return
		}
		limit = n
	}
	f.Limit = limit

	var tenants []*registry.Tenant
	if corpus := q.Get("corpus"); corpus != "" {
		tn, ok := s.reg.Get(corpus)
		if !ok {
			s.writeError(w, http.StatusNotFound, "unknown corpus %q", corpus)
			return
		}
		tenants = []*registry.Tenant{tn}
	} else {
		tenants = s.reg.All()
	}
	var all []*tracestore.Trace
	for _, tn := range tenants {
		all = append(all, tn.Traces.List(f)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Start.After(all[j].Start) })
	if len(all) > limit {
		all = all[:limit]
	}
	rows := make([]map[string]any, 0, len(all))
	for _, t := range all {
		rows = append(rows, traceSummaryJSON(t))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"count":  len(rows),
		"traces": rows,
	})
}

// handleTraceGet serves GET /v1/traces/{id}: the full span tree of one
// retained trace, searched across every tenant's ring (trace IDs are
// process-unique random 128-bit values, so cross-tenant collision is
// not a practical concern).
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.DisableTraces {
		s.writeError(w, http.StatusForbidden, "trace retention disabled: start the server without -traces=false")
		return
	}
	id := r.PathValue("id")
	for _, tn := range s.reg.All() {
		if t, ok := tn.Traces.Get(id); ok {
			s.writeJSON(w, http.StatusOK, traceJSON(t))
			return
		}
	}
	s.writeError(w, http.StatusNotFound, "unknown trace %q (evicted, unsampled, or never existed)", id)
}

// registerTraceMetrics exposes the retention counters, summed across
// tenants at scrape time (zero when tracing is disabled — the nil
// stores report empty stats).
func (s *Server) registerTraceMetrics() {
	reg := s.tel.reg
	sum := func(field func(tracestore.Stats) uint64) func() uint64 {
		return func() uint64 {
			var n uint64
			for _, tn := range s.reg.All() {
				n += field(tn.Traces.Stats())
			}
			return n
		}
	}
	reg.CounterFunc("propserve_traces_retained_total",
		"Traces retained by the tail sampler, across all corpora.",
		sum(func(st tracestore.Stats) uint64 { return st.Retained }))
	reg.CounterFunc("propserve_traces_dropped_total",
		"Retained traces later evicted by the ring's count or byte bound.",
		sum(func(st tracestore.Stats) uint64 { return st.Dropped }))
}
