//go:build !windows

package main

// The kill-recovery suite: a child process (this test binary re-exec'd
// into TestCrashHelper) applies mutation batches against a real WAL,
// fsyncs an acknowledgement line after every successful batch, and
// SIGKILLs itself at an injected fault point — before the append's
// write, mid-record, before the fsync, between batches, or inside
// snapshot compaction. The parent then recovers from the surviving
// directory and checks the durability contract: the recovered epoch
// covers every acknowledged batch, nothing beyond the last append
// survives, and the corpus equals a never-crashed reference at the
// recovered epoch — no torn batch, no lost acknowledged mutation.

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"repro/internal/engine"
	"repro/internal/wal"
)

const (
	crashChildEnv = "PROPSERVE_CRASH_CHILD"
	crashDirEnv   = "PROPSERVE_CRASH_DIR"
	crashOpEnv    = "PROPSERVE_CRASH_OP"
	crashAfterEnv = "PROPSERVE_CRASH_AFTER"
)

// crashBatch must be a pure function of gen: the parent rebuilds the
// reference history from it.
func crashBatch(gen int) engine.Mutation { return beaconBatch(gen, 3) }

// TestCrashHelper is the child body; it only runs re-exec'd with the
// crash environment set and never returns normally when a fault op is
// configured (SIGKILL).
func TestCrashHelper(t *testing.T) {
	if os.Getenv(crashChildEnv) == "" {
		t.Skip("kill-recovery child process; run via TestCrashRecovery")
	}
	dir := os.Getenv(crashDirEnv)
	op := os.Getenv(crashOpEnv)
	after, err := strconv.Atoi(os.Getenv(crashAfterEnv))
	if err != nil {
		t.Fatalf("bad %s: %v", crashAfterEnv, err)
	}

	ack, err := os.OpenFile(filepath.Join(dir, "acked"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}

	// The same durable boot the server performs.
	d, epoch, ok := loadNewestSnapshot(dir, t.Logf)
	if !ok {
		d = durTestData(t, 9, 300)
	}
	wlog, records, err := wal.Open(dir, wal.Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("child wal.Open: %v", err)
	}
	eng := engine.New(d, engine.Options{InitialEpoch: epoch})
	if _, err := replayWAL(context.Background(), eng, records, nil); err != nil {
		t.Fatalf("child replay: %v", err)
	}
	eng.SetWAL(wlog)

	armed := false
	restore := wal.SetFaultHook(func(got string) error {
		if armed && got == op {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable; the kill is not survivable
		}
		return nil
	})
	defer restore()

	// Acknowledge `after` batches, then run one more with the fault armed
	// (for append ops the process dies inside that Mutate call).
	start := int(eng.Epoch()) + 1
	for gen := start; gen <= after+1; gen++ {
		armed = gen > after && strings.HasPrefix(op, "append:")
		res, err := eng.Mutate(context.Background(), crashBatch(gen))
		if err != nil {
			t.Fatalf("child mutate gen %d: %v", gen, err)
		}
		fmt.Fprintf(ack, "%d\n", res.Epoch)
		if err := ack.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	switch {
	case strings.HasPrefix(op, "snapshot:") || strings.HasPrefix(op, "compact:"):
		armed = true
		sd, sepoch := eng.Snapshot()
		if _, err := wal.WriteSnapshot(dir, sepoch, sd.Save); err != nil {
			t.Fatalf("child snapshot: %v", err)
		}
		if err := wlog.CompactThrough(sepoch); err != nil {
			t.Fatalf("child compact: %v", err)
		}
	case op == "":
		// Kill between batches: everything written so far is acknowledged.
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
	}
	t.Fatalf("fault %q never fired; the child survived", op)
}

// maxAcked reads the highest acknowledged epoch the child recorded.
func maxAcked(t *testing.T, dir string) uint64 {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "acked"))
	if err != nil {
		t.Fatalf("no ack file: %v", err)
	}
	var max uint64
	for _, line := range strings.Fields(string(b)) {
		v, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			t.Fatalf("bad ack line %q", line)
		}
		if v > max {
			max = v
		}
	}
	return max
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs child processes")
	}
	cases := []struct {
		name  string
		op    string
		after int
	}{
		{"kill-between-batches", "", 3},
		{"kill-before-append-write", wal.OpAppendWrite, 2},
		{"kill-mid-record", wal.OpAppendMid, 2},
		{"kill-before-fsync", wal.OpAppendSync, 2},
		{"kill-before-snapshot-rename", wal.OpSnapshotRename, 3},
		{"kill-during-compact-write", wal.OpCompactWrite, 3},
		{"kill-before-compact-rename", wal.OpCompactRename, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=^TestCrashHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				crashChildEnv+"=1",
				crashDirEnv+"="+dir,
				crashOpEnv+"="+tc.op,
				crashAfterEnv+"="+strconv.Itoa(tc.after),
			)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("child exited cleanly; the fault never killed it:\n%s", out)
			}
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ProcessState.ExitCode() == 1 {
				// Exit code 1 is a test failure inside the child, not the
				// SIGKILL (-1) the fault produces.
				t.Fatalf("child failed before the kill: %v\n%s", err, out)
			}

			acked := maxAcked(t, dir)
			if acked < uint64(tc.after) {
				t.Fatalf("child acknowledged only %d batches before dying, want >= %d", acked, tc.after)
			}

			// Recover exactly like the server boot, then verify the contract.
			d, epoch, ok := loadNewestSnapshot(dir, t.Logf)
			if !ok {
				d = durTestData(t, 9, 300)
			}
			wlog, records, err := wal.Open(dir, wal.Options{Logf: t.Logf})
			if err != nil {
				t.Fatalf("recovery open after %s: %v", tc.name, err)
			}
			defer wlog.Close()
			eng := engine.New(d, engine.Options{InitialEpoch: epoch})
			if _, err := replayWAL(context.Background(), eng, records, nil); err != nil {
				t.Fatalf("recovery replay after %s: %v", tc.name, err)
			}
			got := eng.Epoch()
			if got < acked {
				t.Fatalf("recovered epoch %d lost acknowledged epoch %d", got, acked)
			}
			// At most the one in-flight unacknowledged batch may have made
			// it to disk before the kill.
			if got > acked+1 {
				t.Fatalf("recovered epoch %d is past any batch the child attempted (acked %d)", got, acked)
			}

			// Equivalence: the recovered corpus must match a never-crashed
			// engine fed the same history up to the recovered epoch — a torn
			// or half-applied batch cannot pass this.
			ref := engine.New(durTestData(t, 9, 300), engine.Options{})
			for gen := 1; gen <= int(got); gen++ {
				if _, err := ref.Mutate(context.Background(), crashBatch(gen)); err != nil {
					t.Fatal(err)
				}
			}
			want, have := ref.Corpus(), eng.Corpus()
			if len(want.Places) != len(have.Places) {
				t.Fatalf("recovered corpus has %d places, reference %d", len(have.Places), len(want.Places))
			}
			wantState := make(map[string]string, len(want.Places))
			for _, p := range want.Places {
				wantState[p.Label] = fmt.Sprintf("%v/%d", p.Loc, p.Context.Len())
			}
			for _, p := range have.Places {
				if wantState[p.Label] != fmt.Sprintf("%v/%d", p.Loc, p.Context.Len()) {
					t.Fatalf("place %q diverges from the reference after recovery", p.Label)
				}
			}

			// The recovered log keeps accepting the next epoch.
			eng.SetWAL(wlog)
			res, err := eng.Mutate(context.Background(), crashBatch(int(got)+1))
			if err != nil || res.Epoch != got+1 {
				t.Fatalf("post-recovery mutate: %v (epoch %v, want %d)", err, res, got+1)
			}
		})
	}
}
