package main

// Fault-injection tests for the serving path: they use the cancellation
// checkpoints' fault hook (core.SetCheckpointHook) to stall, panic, or
// observe requests mid-computation, exercising client disconnects,
// deadline overruns, load shedding, panic recovery, and graceful
// shutdown. The hook is process-global, so none of these tests run in
// parallel.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestSearchClientDisconnect: a request whose client already hung up must
// be abandoned inside the compute path (observed at a cancellation
// checkpoint) and reported as 503, not computed to completion.
func TestSearchClientDisconnect(t *testing.T) {
	s := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var stages []string
	restore := core.SetCheckpointHook(func(stage string) { stages = append(stages, stage) })
	defer restore()

	req := httptest.NewRequest(http.MethodGet, "/v1/search?K=60&k=5", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "cancelled") {
		t.Errorf("body = %s", rec.Body.String())
	}
	// The pipeline must have stopped at its first checkpoint: no further
	// scoring stages may have run.
	if len(stages) != 1 || stages[0] != "scores:start" {
		t.Errorf("checkpoints hit after disconnect: %v, want [scores:start]", stages)
	}
}

// TestSearchDeadlineExceeded: when the per-request budget expires
// mid-scoring, the request fails with 504 within one checkpoint interval.
func TestSearchDeadlineExceeded(t *testing.T) {
	s := testServerCfg(t, Config{QueryTimeout: time.Millisecond})
	restore := core.SetCheckpointHook(func(string) { time.Sleep(5 * time.Millisecond) })
	defer restore()

	rec := get(t, s, "/v1/search?K=60&k=5")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Errorf("body = %s", rec.Body.String())
	}
}

// TestShedUnderLoad saturates a 1-slot, 1-waiter gate and requires the
// third request to be shed immediately with 503 + Retry-After, while the
// in-flight and queued requests both complete once unblocked.
func TestShedUnderLoad(t *testing.T) {
	s := testServerCfg(t, Config{
		MaxInFlight:  1,
		MaxQueue:     1,
		QueueWait:    5 * time.Second,
		QueryTimeout: 30 * time.Second,
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	restore := core.SetCheckpointHook(func(string) {
		once.Do(func() { close(entered) })
		<-release
	})
	defer restore()

	r1 := make(chan *httptest.ResponseRecorder, 1)
	go func() { r1 <- get(t, s, "/v1/search?K=60&k=5") }()
	<-entered // request 1 holds the only slot, parked inside scoring

	r2 := make(chan *httptest.ResponseRecorder, 1)
	go func() { r2 <- get(t, s, "/v1/search?K=60&k=5") }()
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request 2 never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full: request 3 must shed without waiting.
	rec := get(t, s, "/v1/search?K=60&k=5")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated status = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After header")
	}

	close(release)
	for i, ch := range []chan *httptest.ResponseRecorder{r1, r2} {
		select {
		case rec := <-ch:
			if rec.Code != http.StatusOK {
				t.Errorf("request %d: status = %d: %s", i+1, rec.Code, rec.Body.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d never completed", i+1)
		}
	}
	if s.gate.InFlight() != 0 || s.gate.Queued() != 0 {
		t.Errorf("gate not drained: inflight %d queued %d", s.gate.InFlight(), s.gate.Queued())
	}
}

// TestPanicRecovery injects a panic into the compute path: the request
// must yield a 500, the admission slot must be released, and the server
// must keep serving.
func TestPanicRecovery(t *testing.T) {
	s := testServerCfg(t, Config{MaxInFlight: 1})
	var fired atomic.Bool
	restore := core.SetCheckpointHook(func(string) {
		if fired.CompareAndSwap(false, true) {
			panic("injected compute fault")
		}
	})

	rec := get(t, s, "/v1/search?K=60&k=5")
	restore()
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "internal server error") {
		t.Errorf("body = %s", rec.Body.String())
	}
	if s.gate.InFlight() != 0 {
		t.Fatalf("panic leaked an admission slot: inflight = %d", s.gate.InFlight())
	}

	// The process survived; with MaxInFlight=1 a healthy follow-up request
	// also proves the slot was returned.
	if rec := get(t, s, "/v1/search?K=60&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("post-panic status = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestGracefulShutdown starts a real http.Server, parks a request inside
// the scoring path, begins Shutdown, and requires the in-flight request to
// complete with 200 while Shutdown returns cleanly.
func TestGracefulShutdown(t *testing.T) {
	s := testServer(t)
	srv := &http.Server{Handler: s}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	restore := core.SetCheckpointHook(func(string) {
		once.Do(func() { close(entered) })
		<-release
	})
	defer restore()

	result := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/v1/search?K=60&k=5")
		if err != nil {
			result <- err
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			result <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
			return
		}
		result <- nil
	}()
	<-entered // the request is inside scoring

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Let Shutdown stop the listener, then unblock the in-flight request.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if err := <-result; err != nil {
		t.Fatalf("in-flight request during shutdown: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Errorf("serve returned %v, want ErrServerClosed", err)
	}
}

// TestErrorStatusTaxonomy pins the client/server/overload status mapping:
// validation problems are 400, internal faults 500, cancellations 503,
// deadline overruns 504.
func TestErrorStatusTaxonomy(t *testing.T) {
	s := testServer(t)

	// Client errors → 400.
	if rec := get(t, s, "/v1/search?k=0"); rec.Code != http.StatusBadRequest {
		t.Errorf("validation: status = %d, want 400", rec.Code)
	}
	// exact on an instance beyond the brute-force guard is a client
	// request the server cannot honour → 400, not 500.
	if rec := get(t, s, "/v1/search?K=200&k=30&algo=exact"); rec.Code != http.StatusBadRequest {
		t.Errorf("exact too large: status = %d, want 400: %s", rec.Code, rec.Body.String())
	}

	// Internal fault → 500 (via injected panic).
	var fired atomic.Bool
	restore := core.SetCheckpointHook(func(string) {
		if fired.CompareAndSwap(false, true) {
			panic("taxonomy probe")
		}
	})
	rec := get(t, s, "/v1/search?K=60&k=5")
	restore()
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("internal: status = %d, want 500", rec.Code)
	}

	// Cancellation → 503.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/v1/search?K=60&k=5", nil).WithContext(ctx)
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusServiceUnavailable {
		t.Errorf("cancelled: status = %d, want 503", rec2.Code)
	}
}
