// Command propserve exposes proportional spatial keyword search as an
// HTTP JSON API over a registry of named corpora.
//
//	propserve -data db.gob -addr :8080
//
// Endpoints (versioned under /v1). Query and mutation routes exist in
// two byte-compatible forms: corpus-scoped under /v1/corpora/{name}/...
// and un-scoped aliases that address the corpus named "default" —
// /v1/search ≡ /v1/corpora/default/search, and likewise for explain,
// batch, corpus and slo. The pre-versioning /search and /stats aliases
// are retired and answer 410 Gone with a successor-version Link;
// -enable-legacy re-opens them as deprecated pass-throughs:
//
//	GET  /healthz                → liveness: {"status":"ok", ...} plus admission-gate
//	                               occupancy and the durability state; always 200 while
//	                               the process can serve reads (including during recovery)
//	GET  /readyz                 → readiness: 503 {"status":"recovering"} while startup
//	                               WAL replay runs, 200 {"status":"ready"} afterwards
//	GET  /v1/stats               → corpus statistics, gate counters, engine cache
//	                               counters, recovered panics, server identity
//	                               (uptime, go version, build revision)
//	GET  /v1/slo                 → per-class service-level state: rolling-window
//	                               (1m/5m/1h) latency quantiles, availability and
//	                               latency error-budget burn rates, budget remaining,
//	                               and exemplar_trace IDs linking quantiles to retained
//	                               traces; on by default, -slo=false disables
//	GET  /v1/traces              → retained request traces, newest first; filter with
//	                               ?corpus=&status=&reason=&min_duration_ms=&limit=;
//	                               tail-sampled (slow/error/shed/degraded always,
//	                               -trace-sample of the rest), -traces=false disables
//	GET  /v1/traces/{id}         → one trace's full span tree: root → retrieve → one
//	                               child per shard (primed/refills/merge-wait) → merge
//	                               → select → render, with per-span attributes
//	GET  /metrics                → Prometheus text-format metrics (requests, stage
//	                               latencies, gate gauges/counters, engine cache
//	                               hit/miss/coalesced/eviction counters, degradations)
//	GET  /v1/search?x=&y=&keywords=a,b&K=100&k=10&lambda=0.5&gamma=0.5&algo=abp&spatial=squared
//	                             → proportional selection with score breakdown, a
//	                               per-stage timing breakdown, and the cache status
//	                               (hit/miss/coalesced) in diagnostics
//	POST /v1/batch               → {"queries":[{...}, ...]} runs up to -max-batch
//	                               queries through a bounded worker pool; each element
//	                               reports its own status from the same error taxonomy
//	GET  /v1/explain             → /v1/search parameters evaluated under an
//	                               introspection collector (greedy trace, msJh pruning
//	                               counters, sampled grid error); requires
//	                               -enable-explain and bypasses the score-set cache
//	POST /v1/corpus              → {"upserts":[{"id","x","y","context":[...]}],
//	                               "deletes":["id", ...]} applies one mutation batch
//	                               atomically and publishes the next corpus epoch;
//	                               requires -enable-mutation, capped by
//	                               -max-mutation-batch
//	GET  /v1/corpora             → every registered corpus with per-tenant stats
//	                               (places, epoch, shards, cache hit ratio, WAL lag)
//	POST /v1/corpora             → {"name","places","seed","shards","cache_entries"}
//	                               registers a new corpus with its own engine, gate
//	                               and SLO tracker; durable under -corpora-dir;
//	                               requires -enable-mutation
//	DELETE /v1/corpora/{name}    → unregisters a corpus and closes its WAL (files
//	                               stay on disk); the default corpus is protected
//
// With -shards=N (N ≥ 2) every corpus is split into N spatial shards —
// each with its own inverted index, IR-tree and epoch — and Step-1
// retrieval fans out across them in parallel. Sharded results are
// exactly those of the unsharded engine (see DESIGN.md). Independently,
// -step1-workers=N fans the quadratic Step-1 score fills of a cache miss
// (contextual all-pairs, spatial all-pairs or grid matrix fill) out over
// N goroutines; the parallel fills are bit-identical to the sequential
// ones, so responses and cache contents do not depend on the setting.
//
// With -wal-dir set, mutations are durable: each batch is appended to a
// checksummed write-ahead log (fsynced per -wal-sync) strictly before its
// epoch is published, snapshots compact the log in the background
// (-wal-compact-records), and startup recovers the newest valid snapshot
// plus a log replay before /readyz flips ready. -wal-required=false turns
// recovery failures into degraded read-mostly serving instead of a fatal
// exit. See README.md "Durability".
//
// Queries are served by a shared cross-query engine (internal/engine):
// maximal grid tables are built once per resolution, score sets are
// cached in an LRU (-cache-entries), and concurrent identical queries
// are computed once and shared. The corpus lives behind epoch-versioned
// snapshots: every query reads the epoch published when it arrived, a
// mutation batch swaps in the next epoch atomically and sweeps
// stale-epoch cache entries, and responses report their epoch in
// diagnostics.corpus_epoch.
//
// The serving path is guarded by per-request deadline budgets
// (-query-timeout), bounded-concurrency admission control (-max-inflight,
// -max-queue; overload sheds with 503 + Retry-After), a retrieval-size
// ceiling (-max-K), and panic recovery. Every request carries an
// X-Request-ID (echoed in error bodies and the JSON access log, which
// -access-log=false disables), accepts an incoming W3C traceparent header
// and echoes its own on every response, and -debug-addr opts into a
// net/http/pprof
// listener for profiling. Queries slower than -slow-query-ms emit one
// JSON line with their full stage (and, for explains, introspection)
// breakdown. See README.md "Operational resilience", "Observability" and
// "Serving at scale".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/registry"
	"repro/internal/wal"
)

func main() {
	fs := flag.NewFlagSet("propserve", flag.ExitOnError)
	data := fs.String("data", "", "dataset file from datagen (empty: generate a demo corpus)")
	addr := fs.String("addr", ":8080", "listen address")
	queryTimeout := fs.Duration("query-timeout", 10*time.Second, "per-request deadline budget (admission wait + scoring + selection)")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrent /search requests (0: 2×GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 0, "max /search requests waiting for admission before shedding (0: same as -max-inflight)")
	queueWait := fs.Duration("queue-wait", time.Second, "longest a request may wait for admission before shedding")
	maxK := fs.Int("max-K", 2000, "ceiling on the retrieval size K (quadratic work unit); larger requests are clamped")
	cacheEntries := fs.Int("cache-entries", 0, "score sets held in the engine's LRU cache (0: 128; one entry is ~12·K² bytes)")
	maxBatch := fs.Int("max-batch", 0, "max queries accepted in one POST /v1/batch request (0: 256)")
	batchWorkers := fs.Int("batch-workers", 0, "worker pool size per batch request (0: GOMAXPROCS)")
	degradeBudget := fs.Duration("degrade-budget", 0, "remaining-budget threshold that downshifts spatial=exact to the squared grid (0: query-timeout/4)")
	debugAddr := fs.String("debug-addr", "", "listen address for the net/http/pprof debug server (empty: disabled)")
	accessLog := fs.Bool("access-log", true, "write one structured JSON line per request to stdout")
	enableExplain := fs.Bool("enable-explain", false, "serve GET /v1/explain (cache-bypassing algorithm introspection; more expensive than the query it explains)")
	enableMutation := fs.Bool("enable-mutation", false, "serve POST /v1/corpus (live corpus upsert/delete batches published as new epochs)")
	maxMutationBatch := fs.Int("max-mutation-batch", 0, "max operations (upserts + deletes) accepted in one POST /v1/corpus request (0: 1024)")
	slowQueryMS := fs.Int("slow-query-ms", 0, "latency threshold in milliseconds above which a query emits a slow-query JSON line (0: disabled)")
	sloEnabled := fs.Bool("slo", true, "track per-class SLOs and serve GET /v1/slo (rolling-window quantiles, error-budget burn rates)")
	sloHitP99 := fs.Duration("slo-hit-p99", 10*time.Millisecond, "p99 latency objective for cache-hit searches")
	sloMissP99 := fs.Duration("slo-miss-p99", 250*time.Millisecond, "p99 latency objective for computed (cache-miss) searches")
	sloBatchP99 := fs.Duration("slo-batch-p99", 500*time.Millisecond, "p99 latency objective for individual batch elements")
	sloMutateP99 := fs.Duration("slo-mutate-p99", time.Second, "p99 latency objective for corpus mutations")
	sloAvailability := fs.Float64("slo-availability", 0.999, "success-ratio objective shared by every request class")
	walDir := fs.String("wal-dir", "", "directory for the write-ahead log and corpus snapshots (empty: durability disabled, mutations are volatile)")
	walSync := fs.String("wal-sync", "always", "WAL fsync policy: always (fsync every append), interval (background cadence), never (OS page cache only)")
	walSyncInterval := fs.Duration("wal-sync-interval", 100*time.Millisecond, "fsync cadence under -wal-sync=interval")
	walRequired := fs.Bool("wal-required", true, "treat WAL open/recovery failure as fatal; false degrades to serving reads and shedding mutations with 503")
	walCompactRecords := fs.Int("wal-compact-records", 0, "log length in records beyond which a mutation triggers background snapshot compaction (0: 1024)")
	shards := fs.Int("shards", 0, "spatial shards per corpus for parallel Step-1 fan-out (0 or 1: unsharded; results are identical either way)")
	step1Workers := fs.Int("step1-workers", 0, "goroutines for the quadratic Step-1 fills of a cache miss (contextual all-pairs, spatial all-pairs, grid matrix fill); 0 or 1: sequential; results are identical either way")
	traces := fs.Bool("traces", true, "retain per-request traces (tail-based: slow/error/shed/degraded always, -trace-sample for the rest) and serve GET /v1/traces")
	traceSample := fs.Float64("trace-sample", 0.01, "probability that a fast, healthy request's trace is retained (tail rules retain regardless; negative: tail-only)")
	traceBytes := fs.Int("trace-bytes", 0, "byte budget for each corpus's retained-trace ring (0: 4 MiB)")
	traceExport := fs.String("trace-export", "", "file appending one JSON line per retained trace (empty: disabled)")
	corporaDir := fs.String("corpora-dir", "", "directory holding one WAL subdirectory per named corpus; corpora created via POST /v1/corpora become durable, and existing subdirectories are re-registered at boot (empty: created corpora are volatile)")
	enableLegacy := fs.Bool("enable-legacy", false, "re-open the retired pre-/v1 aliases /search and /stats as deprecated pass-throughs (default: they answer 410 Gone)")
	fs.Parse(os.Args[1:])

	cfg := Config{
		QueryTimeout:  *queryTimeout,
		MaxInFlight:   *maxInFlight,
		MaxQueue:      *maxQueue,
		QueueWait:     *queueWait,
		MaxK:          *maxK,
		CacheEntries:  *cacheEntries,
		MaxBatch:      *maxBatch,
		BatchWorkers:  *batchWorkers,
		DegradeBudget: *degradeBudget,
		EnableExplain: *enableExplain,
		SlowQuery:     time.Duration(*slowQueryMS) * time.Millisecond,

		DisableSLO:      !*sloEnabled,
		SLOHitP99:       *sloHitP99,
		SLOMissP99:      *sloMissP99,
		SLOBatchP99:     *sloBatchP99,
		SLOMutateP99:    *sloMutateP99,
		SLOAvailability: *sloAvailability,

		EnableMutation:   *enableMutation,
		MaxMutationBatch: *maxMutationBatch,

		WALCompactRecords: *walCompactRecords,

		EnableLegacy: *enableLegacy,
		Shards:       *shards,
		Step1Workers: *step1Workers,
		CorporaDir:   *corporaDir,

		DisableTraces: !*traces,
		TraceSample:   *traceSample,
		TraceBudget:   *traceBytes,
	}
	if *accessLog {
		cfg.AccessLog = os.Stdout
	}
	if cfg.SlowQuery > 0 {
		cfg.SlowQueryLog = os.Stderr
	}
	if *traceExport != "" {
		f, err := os.OpenFile(*traceExport, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "propserve: opening -trace-export:", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.TraceExport = f
	}
	cfg = cfg.withDefaults()

	// Durable boot, steps 1–3 (see durability.go): recover the newest
	// valid snapshot, open the log (truncating any torn tail), and build
	// the engine at the snapshot's epoch. Replay (steps 4–5) runs after
	// the listener is up, so reads are served while the log is applied.
	var (
		d          *dataset.Dataset
		bootEpoch  uint64
		wlog       *wal.Log
		walRecords []wal.Record
		walErr     error
	)
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "propserve:", err)
		os.Exit(1)
	}
	if *walDir != "" {
		syncPolicy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fatal(err)
		}
		if snap, epoch, ok := loadNewestSnapshot(*walDir, cfg.Logf); ok {
			d, bootEpoch = snap, epoch
			fmt.Printf("propserve: recovered snapshot at epoch %d (%d places)\n", epoch, len(d.Places))
		} else {
			if d, err = loadOrGenerate(*data); err != nil {
				fatal(err)
			}
		}
		wlog, walRecords, walErr = wal.Open(*walDir, wal.Options{
			Sync:         syncPolicy,
			SyncInterval: *walSyncInterval,
			Logf:         cfg.Logf,
		})
		if walErr != nil {
			if *walRequired {
				fatal(fmt.Errorf("opening wal in %s: %w (start with -wal-required=false to serve reads anyway)", *walDir, walErr))
			}
			walErr = fmt.Errorf("opening wal in %s: %w", *walDir, walErr)
		}
	} else {
		var err error
		if d, err = loadOrGenerate(*data); err != nil {
			fatal(err)
		}
	}

	opts := engineOptions(cfg)
	opts.InitialEpoch = bootEpoch
	h := NewServerWithEngine(engine.New(d, opts), cfg)
	if *walDir != "" {
		h.BeginRecovery()
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	if *debugAddr != "" {
		// The pprof surface is opt-in and served on its own listener so it
		// is never reachable through the public address.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := dsrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "propserve: debug server:", err)
			}
		}()
		fmt.Printf("propserve: pprof debug server on %s\n", *debugAddr)
	}
	fmt.Printf("propserve: %d places, listening on %s (timeout %v, inflight %d, max K %d)\n",
		len(d.Places), *addr, h.cfg.QueryTimeout, h.cfg.MaxInFlight, h.cfg.MaxK)

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	// Steps 4–5: replay the log through the engine while the listener
	// already serves reads (and answers /readyz with 503 "recovering"),
	// then attach the WAL and flip ready. A recovery failure is fatal
	// under -wal-required; otherwise the server degrades to read-mostly.
	if *walDir != "" {
		if walErr != nil {
			h.DegradeWAL(walErr)
		} else if err := h.Recover(context.Background(), wlog, walRecords); err != nil {
			if *walRequired {
				fatal(fmt.Errorf("wal recovery: %w", err))
			}
			h.DegradeWAL(err)
		}
	}

	// Re-register durable secondary corpora: every subdirectory of
	// -corpora-dir names a corpus from a previous life of the server, and
	// boots through the same snapshot + replay sequence as the default. A
	// corpus that fails to boot is skipped (reads on the others continue),
	// not fatal — its files stay on disk for inspection.
	if *corporaDir != "" {
		entries, err := os.ReadDir(*corporaDir)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintln(os.Stderr, "propserve: scanning -corpora-dir:", err)
		}
		for _, e := range entries {
			name := e.Name()
			if !e.IsDir() || name == registry.DefaultName {
				continue
			}
			gen := func() (*dataset.Dataset, error) {
				c := dataset.DBpediaLike(0)
				c.Places = 1000
				return dataset.Generate(c)
			}
			dir := filepath.Join(*corporaDir, name)
			if _, err := h.bootCorpus(context.Background(), name, dir, gen, engineOptions(cfg)); err != nil {
				fmt.Fprintf(os.Stderr, "propserve: corpus %q boot failed: %v\n", name, err)
				continue
			}
			fmt.Printf("propserve: corpus %q re-registered from %s\n", name, dir)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "propserve:", err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Printf("propserve: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "propserve: shutdown:", err)
			os.Exit(1)
		}
		if wlog != nil {
			// The log is fsynced per policy on every append; Close fsyncs
			// once more so an interval/never log loses nothing on a clean
			// shutdown.
			if err := wlog.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "propserve: closing wal:", err)
			}
		}
	}
}

func loadOrGenerate(path string) (*dataset.Dataset, error) {
	if path == "" {
		cfg := dataset.DBpediaLike(7)
		cfg.Places = 1500
		return dataset.Generate(cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.Load(f)
}
