package main

// Shard-equivalence property suite: a server running with -shards=4 must
// be observationally identical to an unsharded one through /v1/search —
// same result IDs, same scores, same diagnostics (modulo per-request
// timings, which stripVolatile removes). The engine-level proof lives in
// internal/engine/shard_test.go; this suite pins the property at the
// HTTP boundary, across the query-parameter grid and across a live
// corpus mutation applied to both servers.

import (
	"fmt"
	"net/http"
	"reflect"
	"testing"
)

// equivalenceQueries is the K/k/λ/γ × algorithm × spatial-mode grid the
// suite compares, plus keyword-filtered and off-center variants.
func equivalenceQueries(keyword string) []string {
	var qs []string
	for _, K := range []int{40, 120} {
		for _, k := range []int{5, 10} {
			for _, lg := range []string{"", "&lambda=0.4&gamma=0.7"} {
				for _, algo := range []string{"abp", "iadu"} {
					for _, spatial := range []string{"squared", "radial"} {
						qs = append(qs, fmt.Sprintf("x=50&y=50&K=%d&k=%d%s&algo=%s&spatial=%s",
							K, k, lg, algo, spatial))
					}
				}
			}
		}
	}
	qs = append(qs,
		"x=12&y=87&K=80&k=8",
		"x=50&y=50&K=60&k=6&keywords="+keyword,
		"x=50&y=50&K=60&k=6&keywords="+keyword+",beacon-eq",
	)
	return qs
}

func TestShardEquivalenceHTTP(t *testing.T) {
	unsharded := testServerCfg(t, Config{EnableMutation: true})
	sharded := testServerCfg(t, Config{EnableMutation: true, Shards: 4})
	if got := sharded.def.Eng.Stats().Shards; got != 4 {
		t.Fatalf("sharded server reports %d shards, want 4", got)
	}
	word := unsharded.data.Places[0].Context.Words(unsharded.data.Dict)[0]
	queries := equivalenceQueries(word)

	compare := func(phase string) {
		t.Helper()
		for _, q := range queries {
			a := get(t, unsharded, "/v1/search?"+q)
			b := get(t, sharded, "/v1/search?"+q)
			if a.Code != http.StatusOK || b.Code != a.Code {
				t.Fatalf("%s: %q: status unsharded=%d sharded=%d: %s", phase, q, a.Code, b.Code, b.Body.String())
			}
			sa := stripVolatile(t, a.Body.Bytes())
			sb := stripVolatile(t, b.Body.Bytes())
			if !reflect.DeepEqual(sa, sb) {
				t.Errorf("%s: %q diverges:\nunsharded: %v\nsharded:   %v", phase, q, sa, sb)
			}
		}
	}
	compare("pre-mutation")

	// The same mutation on both servers — through the un-scoped alias on
	// one and the corpus-scoped route on the other, so the suite also
	// witnesses the two route forms being the same handler. It upserts a
	// keyword cluster near one query point and deletes real places (which
	// forces a rebuild of the shards that held them).
	mutation := map[string]any{
		"upserts": []map[string]any{
			{"id": "eq:a", "x": 50.01, "y": 50, "context": []string{"beacon-eq", word}},
			{"id": "eq:b", "x": 49.99, "y": 50.02, "context": []string{"beacon-eq"}},
			{"id": "eq:c", "x": 12.3, "y": 86.9, "context": []string{word}},
		},
		"deletes": []string{
			unsharded.data.Places[3].Label,
			unsharded.data.Places[250].Label,
		},
	}
	ra := postJSON(t, unsharded, "/v1/corpus", mutation)
	rb := postJSON(t, sharded, "/v1/corpora/default/corpus", mutation)
	if ra.Code != http.StatusOK || rb.Code != http.StatusOK {
		t.Fatalf("mutation: unsharded=%d sharded=%d: %s", ra.Code, rb.Code, rb.Body.String())
	}
	ma := stripVolatile(t, ra.Body.Bytes())
	mb := stripVolatile(t, rb.Body.Bytes())
	// The cache-sweep count is an implementation detail of each server's
	// cache fill pattern, not a corpus property.
	delete(ma, "swept_entries")
	delete(mb, "swept_entries")
	if !reflect.DeepEqual(ma, mb) {
		t.Errorf("mutation results diverge:\nunsharded: %v\nsharded:   %v", ma, mb)
	}

	compare("post-mutation")
}

// TestShardEquivalenceExplain extends the property to /v1/explain: the
// per-iteration trace is a function of the score set, so a sharded
// Step-1 that merges exactly must reproduce it verbatim.
func TestShardEquivalenceExplain(t *testing.T) {
	unsharded := testServerCfg(t, Config{EnableExplain: true})
	sharded := testServerCfg(t, Config{EnableExplain: true, Shards: 4})
	for _, q := range []string{
		"x=50&y=50&K=80&k=8&algo=iadu",
		"x=50&y=50&K=80&k=8&algo=abp&spatial=radial",
	} {
		a := get(t, unsharded, "/v1/explain?"+q)
		b := get(t, sharded, "/v1/explain?"+q)
		if a.Code != http.StatusOK || b.Code != a.Code {
			t.Fatalf("%q: status unsharded=%d sharded=%d", q, a.Code, b.Code)
		}
		sa := stripVolatile(t, a.Body.Bytes())
		sb := stripVolatile(t, b.Body.Bytes())
		if !reflect.DeepEqual(sa, sb) {
			t.Errorf("explain %q diverges:\nunsharded: %v\nsharded:   %v", q, sa, sb)
		}
	}
}
