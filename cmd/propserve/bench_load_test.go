package main

// TestBenchServeLoad, gated on BENCH_LOAD_OUT, drives sustained
// open-loop load through the loadgen harness against an in-process
// server — one run per traffic mix — and writes tail-latency,
// throughput and shed-rate figures to BENCH_serve_load.json
// (`make bench-load`). The flattened keys (`hit_heavy_p99_ms`,
// `miss_heavy_shed_rate`, ...) are what the extended benchdiff gates
// on: a p99 or shed-rate regression between two snapshots fails the
// comparison just like an ns/op regression does.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/loadgen"
)

func TestBenchServeLoad(t *testing.T) {
	out := os.Getenv("BENCH_LOAD_OUT")
	if out == "" {
		t.Skip("set BENCH_LOAD_OUT=<path> to write BENCH_serve_load.json")
	}
	dcfg := dataset.DBpediaLike(7)
	dcfg.Places = 1500
	d, err := dataset.Generate(dcfg)
	if err != nil {
		t.Fatal(err)
	}

	// Hit-heavy stresses the cached fast path at high rate; miss-heavy
	// the compute path at a rate it can sustain; mutation-interleaved
	// adds epoch churn that repeatedly flushes the cache under load.
	mixes := []struct {
		mix string
		rps float64
		cfg Config
	}{
		{loadgen.MixHitHeavy, 200, Config{}},
		{loadgen.MixMissHeavy, 50, Config{}},
		{loadgen.MixMutationInterleaved, 150, Config{EnableMutation: true}},
	}

	report := map[string]any{
		"benchmark": "serve_sustained_load",
		"dataset":   map[string]any{"name": d.Config.Name, "places": len(d.Places), "seed": d.Config.Seed},
		"go":        runtime.Version(),
		"cpus":      runtime.NumCPU(),
	}
	for _, m := range mixes {
		cfg := m.cfg
		cfg.Logf = t.Logf
		s := NewServer(d, cfg)
		ts := httptest.NewServer(s)
		r, err := loadgen.Run(context.Background(), loadgen.Options{
			BaseURL:  ts.URL,
			RPS:      m.rps,
			Duration: 3 * time.Second,
			Warmup:   time.Second,
			Mix:      m.mix,
			Data:     d,
			Seed:     1,
		})
		ts.Close()
		if err != nil {
			t.Fatal(err)
		}
		if r.TransportErrors > 0 {
			t.Fatalf("%s: %d transport errors", m.mix, r.TransportErrors)
		}
		prefix := strings.ReplaceAll(m.mix, "-", "_")
		report[prefix+"_p50_ms"] = r.Server.P50MS
		report[prefix+"_p95_ms"] = r.Server.P95MS
		report[prefix+"_p99_ms"] = r.Server.P99MS
		report[prefix+"_max_ms"] = r.Server.MaxMS
		report[prefix+"_rps"] = r.ThroughputRPS
		report[prefix+"_shed_rate"] = r.ShedRate
		report[prefix+"_sent"] = r.Sent
		report[prefix+"_errors_5xx"] = r.Errors5xx
		t.Logf("%s: sent %d at %.0f rps, server p50 %.3f p95 %.3f p99 %.3f ms, shed %.3f",
			m.mix, r.Sent, r.ThroughputRPS, r.Server.P50MS, r.Server.P95MS, r.Server.P99MS, r.ShedRate)
	}

	// Multi-tenant stage: one server, two corpora over the same data, a
	// skewed 75/25 rate split driven concurrently through the un-scoped
	// routes (major = default corpus) and the corpus-scoped routes
	// (minor). The per-tenant keys record tenant-isolated tails — the
	// minor tenant's p99 measured while the major tenant hammers its own
	// cache and gate.
	{
		cfg := Config{EnableMutation: true, Logf: t.Logf}
		s := NewServer(d, cfg)
		rec := postJSON(t, s, "/v1/corpora", map[string]any{
			"name": "minor", "places": len(d.Places), "seed": d.Config.Seed,
		})
		if rec.Code != 201 {
			t.Fatalf("create minor corpus: %d: %s", rec.Code, rec.Body.String())
		}
		ts := httptest.NewServer(s)
		tenants := []struct {
			key    string
			corpus string
			rps    float64
		}{
			{"tenant_major", "", 150},
			{"tenant_minor", "minor", 50},
		}
		reports := make([]*loadgen.Report, len(tenants))
		errs := make([]error, len(tenants))
		var wg sync.WaitGroup
		for i, tn := range tenants {
			wg.Add(1)
			go func(i int, corpus string, rps float64) {
				defer wg.Done()
				reports[i], errs[i] = loadgen.Run(context.Background(), loadgen.Options{
					BaseURL:  ts.URL,
					Corpus:   corpus,
					RPS:      rps,
					Duration: 3 * time.Second,
					Warmup:   time.Second,
					Mix:      loadgen.MixHitHeavy,
					Data:     d,
					Seed:     1,
				})
			}(i, tn.corpus, tn.rps)
		}
		wg.Wait()
		ts.Close()
		for i, tn := range tenants {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			r := reports[i]
			if r.TransportErrors > 0 {
				t.Fatalf("%s: %d transport errors", tn.key, r.TransportErrors)
			}
			report[tn.key+"_p50_ms"] = r.Server.P50MS
			report[tn.key+"_p99_ms"] = r.Server.P99MS
			report[tn.key+"_rps"] = r.ThroughputRPS
			report[tn.key+"_shed_rate"] = r.ShedRate
			report[tn.key+"_sent"] = r.Sent
			t.Logf("%s: sent %d at %.0f rps, server p50 %.3f p99 %.3f ms, shed %.3f",
				tn.key, r.Sent, r.ThroughputRPS, r.Server.P50MS, r.Server.P99MS, r.ShedRate)
		}
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
