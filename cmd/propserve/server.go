package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/registry"
	"repro/internal/resilience"
	"repro/internal/slo"
	"repro/internal/telemetry"
	"repro/internal/tracestore"
	"repro/internal/wal"
)

// searchResponse is the canonical query payload; the name survives from
// the pre-engine server for the tests and any code reading it.
type searchResponse = engine.QueryResponse

// Config carries the serving-path resilience and engine knobs. Zero
// values select the defaults noted on each field.
type Config struct {
	// QueryTimeout is the per-request deadline budget covering admission
	// wait, scoring and selection. Default 10s.
	QueryTimeout time.Duration
	// MaxInFlight bounds concurrent query computations (single searches
	// and batch elements alike). Default 2×GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot; beyond it requests are
	// shed with 503. Default MaxInFlight.
	MaxQueue int
	// QueueWait is the longest a request may wait for admission before it
	// is shed. Default 1s.
	QueueWait time.Duration
	// MaxK caps the retrieval size K: Step 1 is quadratic in K, so this is
	// the server's unit of work ceiling. Larger requests are clamped and
	// the clamp reported in diagnostics. Default 2000.
	MaxK int
	// CacheEntries bounds the engine's score-set LRU (a score set is
	// ~12·K² bytes). Default 128.
	CacheEntries int
	// MaxBatch caps the number of queries in one POST /v1/batch request.
	// Default 256.
	MaxBatch int
	// BatchWorkers bounds the per-batch worker pool; the admission gate
	// still bounds total compute across all requests. Default GOMAXPROCS.
	BatchWorkers int
	// DegradeBudget is the remaining-budget threshold below which the
	// exact spatial method is downshifted to the squared grid. Default
	// QueryTimeout/4.
	DegradeBudget time.Duration
	// RetryAfter is the Retry-After hint attached to 503 shed responses.
	// Default 1s.
	RetryAfter time.Duration
	// Logf receives panic reports from the recovery middleware,
	// deprecated-route warnings and response-encoding errors. Default
	// log.Printf.
	Logf func(format string, args ...any)
	// AccessLog, when non-nil, receives one structured JSON line per
	// request (see telemetry.AccessEntry). Nil disables access logging.
	AccessLog io.Writer
	// EnableExplain opens GET /v1/explain, which recomputes both pipeline
	// steps under an introspection collector and bypasses the score-set
	// cache. Off by default: an explain is strictly more expensive than
	// the query it explains, so the endpoint is an operator opt-in.
	EnableExplain bool
	// SlowQuery is the latency threshold above which a query emits one
	// JSON line with its full stage and explain breakdown to SlowQueryLog.
	// 0 disables slow-query logging.
	SlowQuery time.Duration
	// SlowQueryLog receives slow-query lines. Nil falls back to AccessLog's
	// writer, then to Logf.
	SlowQueryLog io.Writer
	// EnableMutation opens POST /v1/corpus, which applies upsert/delete
	// batches and publishes a new corpus epoch. Off by default: a mutable
	// corpus is an operator decision, not a client one.
	EnableMutation bool
	// MaxMutationBatch caps the operations (upserts + deletes) accepted in
	// one POST /v1/corpus request. Default 1024.
	MaxMutationBatch int
	// WALCompactRecords is the log length (in records) beyond which a
	// mutation triggers background snapshot compaction. Only meaningful
	// with a WAL attached. Default 1024.
	WALCompactRecords int
	// DisableSLO turns off the per-class SLO tracker: GET /v1/slo answers
	// 403 and the propserve_slo_* metrics vanish. The tracker costs a few
	// atomic operations per request, so it is on by default.
	DisableSLO bool
	// SLOHitP99 is the p99 latency threshold for the search_hit class
	// (cache-served queries). Default 10ms.
	SLOHitP99 time.Duration
	// SLOMissP99 is the p99 latency threshold for the search_miss class
	// (computed and coalesced queries, plus requests that never reached a
	// cache verdict). Default 250ms.
	SLOMissP99 time.Duration
	// SLOBatchP99 is the p99 latency threshold for individual batch
	// elements. Default 500ms.
	SLOBatchP99 time.Duration
	// SLOMutateP99 is the p99 latency threshold for corpus mutations.
	// Default 1s.
	SLOMutateP99 time.Duration
	// SLOAvailability is the success-ratio target shared by every class:
	// the fraction of requests that are neither 5xx errors nor shed must
	// stay above it. Default 0.999.
	SLOAvailability float64
	// EnableLegacy re-opens the retired pre-/v1 aliases (/search, /stats)
	// as deprecated pass-throughs. Off by default: the aliases answer 410
	// Gone with a successor-version Link instead.
	EnableLegacy bool
	// Shards, when >= 2, splits every corpus into that many spatial
	// shards — each with its own inverted index, IR-tree and epoch — and
	// fans Step-1 retrieval out across them in parallel. Results are
	// exactly those of the unsharded engine. 0 or 1 serves unsharded.
	Shards int
	// Step1Workers fans the quadratic Step-1 fills of a cache miss out
	// over this many goroutines (engine.Options.Step1Workers). ≤ 1 keeps
	// Step 1 sequential; results are identical either way, so the knob
	// trades CPU for miss latency without affecting caches or responses.
	Step1Workers int
	// CorporaDir, when set, makes corpora created through POST /v1/corpora
	// durable: each corpus logs to its own WAL under CorporaDir/<name> and
	// recovers from it on re-creation or restart. The default corpus keeps
	// its own -wal-dir; "" keeps created corpora volatile.
	CorporaDir string
	// DisableTraces turns off trace retention entirely: no per-tenant
	// ring is allocated, GET /v1/traces answers 403, and the request path
	// pays only nil checks. On by default — retention is tail-based, so
	// the steady-state cost is one probabilistic draw per request.
	DisableTraces bool
	// TraceSample is the probability that a fast, healthy request's trace
	// is retained. The tail rules (slow/error/shed/degraded) retain
	// regardless. 0 selects the default 0.01; negative disables
	// probabilistic retention, keeping only the tail.
	TraceSample float64
	// TraceBudget bounds each tenant's retained-trace ring in estimated
	// bytes. 0 selects tracestore.DefaultByteBudget (4 MiB).
	TraceBudget int
	// TraceExport, when non-nil, receives one JSON line per retained
	// trace — the same object GET /v1/traces/{id} serves.
	TraceExport io.Writer
}

func (c Config) withDefaults() Config {
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 10 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = c.MaxInFlight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.MaxK <= 0 {
		c.MaxK = 2000
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.DegradeBudget <= 0 {
		c.DegradeBudget = c.QueryTimeout / 4
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxMutationBatch <= 0 {
		c.MaxMutationBatch = 1024
	}
	if c.WALCompactRecords <= 0 {
		c.WALCompactRecords = 1024
	}
	if c.SLOHitP99 <= 0 {
		c.SLOHitP99 = 10 * time.Millisecond
	}
	if c.SLOMissP99 <= 0 {
		c.SLOMissP99 = 250 * time.Millisecond
	}
	if c.SLOBatchP99 <= 0 {
		c.SLOBatchP99 = 500 * time.Millisecond
	}
	if c.SLOMutateP99 <= 0 {
		c.SLOMutateP99 = time.Second
	}
	if c.SLOAvailability <= 0 {
		c.SLOAvailability = 0.999
	}
	if c.TraceSample == 0 {
		c.TraceSample = 0.01
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// serverMetrics bundles the Prometheus registry and the instruments the
// handlers mutate directly. Gate, panic and engine counters are
// registered as read-at-scrape functions over their sources of truth
// (resilience.Gate.Stats, resilience.Recoverer.Panics, engine.Stats) so
// there is no double bookkeeping.
type serverMetrics struct {
	reg            *telemetry.Registry
	requests       *telemetry.CounterVec   // propserve_requests_total{code}
	requestSeconds *telemetry.Histogram    // propserve_request_seconds
	stageSeconds   *telemetry.HistogramVec // propserve_stage_seconds{stage}
	queueWait      *telemetry.Histogram    // propserve_gate_queue_wait_seconds
	degraded       *telemetry.CounterVec   // propserve_degraded_total{reason}
	batches        *telemetry.Counter      // propserve_batch_requests_total
	batchQueries   *telemetry.Counter      // propserve_batch_queries_total
	deprecated     *telemetry.CounterVec   // propserve_deprecated_requests_total{path}
	slowQueries    *telemetry.Counter      // propserve_slow_queries_total
	mutations      *telemetry.Counter      // propserve_corpus_mutation_requests_total
	tracesSampled  *telemetry.Counter      // propserve_traces_sampled_total
	msjhPruned     *telemetry.Gauge        // propserve_msjh_pruned_ratio
	gridErr        *telemetry.Gauge        // propserve_grid_err_sampled
}

func newServerMetrics(gate *resilience.Gate, rec *resilience.Recoverer, eng *engine.Engine) *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("propserve_requests_total",
			"HTTP requests served, by status code.", "code"),
		// The serving distribution is bimodal — cache hits answer in
		// microseconds, computed misses in milliseconds — so the request,
		// stage and queue-wait histograms use the microsecond-floor layout;
		// DefBuckets would collapse the whole hit mode into its first
		// bucket.
		requestSeconds: reg.Histogram("propserve_request_seconds",
			"End-to-end request latency in seconds.", telemetry.LatencyBuckets),
		stageSeconds: reg.HistogramVec("propserve_stage_seconds",
			"Per-stage pipeline latency in seconds (parse, admission_wait, retrieve, step1_pcs, step1_pss, step2_select, encode).",
			"stage", telemetry.LatencyBuckets),
		queueWait: reg.Histogram("propserve_gate_queue_wait_seconds",
			"Time spent waiting for admission at the gate, in seconds.", telemetry.LatencyBuckets),
		degraded: reg.CounterVec("propserve_degraded_total",
			"Graceful-degradation decisions applied, by reason.", "reason"),
		batches: reg.Counter("propserve_batch_requests_total",
			"POST /v1/batch requests accepted."),
		batchQueries: reg.Counter("propserve_batch_queries_total",
			"Individual queries carried by batch requests."),
		deprecated: reg.CounterVec("propserve_deprecated_requests_total",
			"Requests served through deprecated pre-/v1 routes, by path.", "path"),
		slowQueries: reg.Counter("propserve_slow_queries_total",
			"Queries whose end-to-end latency exceeded the slow-query threshold."),
		mutations: reg.Counter("propserve_corpus_mutation_requests_total",
			"POST /v1/corpus batches accepted by the handler."),
		tracesSampled: reg.Counter("propserve_traces_sampled_total",
			"Traces retained by the probabilistic sampler rather than a tail rule."),
		msjhPruned: reg.Gauge("propserve_msjh_pruned_ratio",
			"Fraction of candidate pairs the msJh engine skipped in the most recent explain run."),
		gridErr: reg.Gauge("propserve_grid_err_sampled",
			"Mean absolute grid-approximation error over sampled pairs in the most recent explain run."),
	}
	reg.GaugeFunc("propserve_gate_inflight",
		"Requests currently holding an admission slot.",
		func() float64 { return float64(gate.InFlight()) })
	reg.GaugeFunc("propserve_gate_queued",
		"Requests currently waiting for an admission slot.",
		func() float64 { return float64(gate.Queued()) })
	reg.GaugeFunc("propserve_gate_capacity",
		"Maximum concurrent in-flight requests.",
		func() float64 { return float64(gate.Capacity()) })
	reg.CounterFunc("propserve_gate_admitted_total",
		"Requests admitted by the gate.",
		func() uint64 { return gate.Stats().Admitted })
	reg.CounterFunc("propserve_gate_shed_total",
		"Requests shed immediately because the wait queue was full.",
		func() uint64 { return gate.Stats().Shed })
	reg.CounterFunc("propserve_gate_queue_timeout_total",
		"Requests shed after waiting the maximum queue time.",
		func() uint64 { return gate.Stats().QueueTimeouts })
	reg.CounterFunc("propserve_gate_cancelled_total",
		"Requests whose context terminated while queued.",
		func() uint64 { return gate.Stats().Cancelled })
	reg.CounterFunc("propserve_panics_recovered_total",
		"Handler panics recovered by the resilience middleware.",
		func() uint64 { return rec.Panics() })
	reg.CounterFunc("propserve_engine_cache_hits_total",
		"Queries served a score set straight from the engine LRU.",
		func() uint64 { return eng.Stats().Hits })
	reg.CounterFunc("propserve_engine_cache_misses_total",
		"Queries that computed (and cached) a score set.",
		func() uint64 { return eng.Stats().Misses })
	reg.CounterFunc("propserve_engine_coalesced_total",
		"Queries that waited on an identical concurrent computation.",
		func() uint64 { return eng.Stats().Coalesced })
	reg.CounterFunc("propserve_engine_cache_evictions_total",
		"Score sets evicted from the engine LRU.",
		func() uint64 { return eng.Stats().Evictions })
	reg.CounterFunc("propserve_engine_builds_total",
		"Score-set builds started by the engine.",
		func() uint64 { return eng.Stats().Builds })
	reg.CounterFunc("propserve_engine_build_errors_total",
		"Score-set builds that failed (failures are never cached).",
		func() uint64 { return eng.Stats().BuildErrors })
	reg.CounterFunc("propserve_engine_explains_total",
		"Cache-bypassing /v1/explain evaluations.",
		func() uint64 { return eng.Stats().Explains })
	reg.GaugeFunc("propserve_engine_cache_hit_ratio",
		"Engine LRU hit ratio over all lookups so far (0 before any lookup).",
		func() float64 { return eng.Stats().HitRatio() })
	reg.GaugeFunc("propserve_engine_cache_entries",
		"Score sets currently resident in the engine LRU.",
		func() float64 { return float64(eng.Stats().Entries) })
	reg.GaugeFunc("propserve_engine_table_bytes",
		"Combined footprint of the shared maximal grid tables.",
		func() float64 { return float64(eng.Stats().TableBytes) })
	reg.GaugeFunc("propserve_corpus_epoch",
		"Currently published corpus epoch (0 until the first mutation).",
		func() float64 { return float64(eng.Epoch()) })
	reg.GaugeFunc("propserve_corpus_places",
		"Places in the currently published corpus epoch.",
		func() float64 { return float64(eng.Stats().Places) })
	reg.CounterFunc("propserve_corpus_mutations_total",
		"Mutation batches applied and published as new corpus epochs.",
		func() uint64 { return eng.Stats().Mutations })
	reg.CounterFunc("propserve_corpus_swept_entries_total",
		"Stale-epoch score sets proactively swept from the engine LRU after mutations.",
		func() uint64 { return eng.Stats().SweptEntries })
	return m
}

// Server serves proportional search over a registry of named corpora,
// each behind its own cross-query engine: grid tables are shared, but
// score-set LRUs, admission gates, SLO trackers and WALs are strictly
// per-corpus (see internal/registry). It is safe for concurrent use. The
// serving path is guarded end to end: panics become 500s, query compute
// sits behind a bounded per-tenant admission gate, and every query
// carries a deadline budget that the scoring and selection loops observe
// cooperatively. Every request is assigned an X-Request-ID and, via
// internal/telemetry, yields a per-stage span breakdown exposed in the
// search diagnostics and in the propserve_stage_seconds histogram on
// /metrics.
//
// Routes are corpus-scoped under /v1/corpora/{corpus}/... (search,
// explain, batch, corpus, slo), with the un-scoped /v1 routes kept as
// byte-compatible aliases onto the corpus named "default". The registry
// itself is administered through GET/POST /v1/corpora and DELETE
// /v1/corpora/{corpus}. The pre-versioning /search and /stats aliases
// are retired: they answer 410 Gone unless Config.EnableLegacy re-opens
// them as deprecated pass-throughs.
type Server struct {
	handler  http.Handler
	mux      *http.ServeMux
	data     *dataset.Dataset
	eng      *engine.Engine // default tenant's engine
	cfg      Config
	gate     *resilience.Gate // default tenant's gate
	rec      *resilience.Recoverer
	tel      *serverMetrics
	slo      *slo.Tracker // default tenant's tracker; nil when Config.DisableSLO
	start    time.Time
	warnOnce sync.Map // deprecated path → *sync.Once
	slowMu   sync.Mutex
	// traceExpMu serialises -trace-export writers so JSONL lines never
	// interleave (retention decisions fire concurrently across handlers).
	traceExpMu sync.Mutex

	// Multi-tenant state: reg maps corpus names to tenants, def is the
	// tenant the un-scoped /v1 aliases address. Each tenant carries its
	// own durability state (WAL, recovery progress, degradation latch);
	// the Server-level recovery methods delegate to def for the
	// single-corpus boot path.
	reg *registry.Registry
	def *registry.Tenant
}

// NewServer builds the handler tree over a fresh engine serving d with
// the given configuration (zero values select defaults). Durability is
// off on this path; the durable boot in main constructs the engine at
// the recovered epoch and uses NewServerWithEngine.
func NewServer(d *dataset.Dataset, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return NewServerWithEngine(engine.New(d, engineOptions(cfg)), cfg)
}

// engineOptions maps the serving configuration onto the engine knobs —
// shared by the fresh-corpus and recovered-corpus constructors so the
// two paths cannot drift.
func engineOptions(cfg Config) engine.Options {
	cfg = cfg.withDefaults()
	return engine.Options{
		MaxK:         cfg.MaxK,
		CacheEntries: cfg.CacheEntries,
		Shards:       cfg.Shards,
		Step1Workers: cfg.Step1Workers,
	}
}

// NewServerWithEngine builds the handler tree over an existing engine.
// The server starts ready; a durable boot calls BeginRecovery before
// serving and Recover (replay + FinishRecovery) once the listener is up.
func NewServerWithEngine(eng *engine.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		mux:   http.NewServeMux(),
		data:  eng.Corpus(),
		eng:   eng,
		cfg:   cfg,
		reg:   registry.New(),
		start: time.Now(),
	}
	s.def = s.newTenant(registry.DefaultName, eng)
	// A fresh registry with a valid name cannot reject the default tenant.
	_ = s.reg.Add(s.def)
	s.gate, s.slo = s.def.Gate, s.def.SLO

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	// Corpus-scoped routes and their un-scoped aliases onto the default
	// corpus. The same handler serves both forms (tenantFor resolves the
	// {corpus} segment, absent means default), so the alias payloads are
	// byte-identical to their scoped counterparts.
	s.mux.HandleFunc("GET /v1/search", s.handleSearch)
	s.mux.HandleFunc("GET /v1/corpora/{corpus}/search", s.handleSearch)
	s.mux.HandleFunc("GET /v1/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/corpora/{corpus}/explain", s.handleExplain)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/corpora/{corpus}/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/corpus", s.handleCorpus)
	s.mux.HandleFunc("POST /v1/corpora/{corpus}/corpus", s.handleCorpus)
	s.mux.HandleFunc("GET /v1/slo", s.handleSLO)
	s.mux.HandleFunc("GET /v1/corpora/{corpus}/slo", s.handleSLO)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	// Retained traces: the list spans every corpus (or one via ?corpus=),
	// the by-ID lookup searches all rings — trace IDs are random 128-bit
	// values, so the ID alone identifies the request.
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	// Registry administration.
	s.mux.HandleFunc("GET /v1/corpora", s.handleCorporaList)
	s.mux.HandleFunc("POST /v1/corpora", s.handleCorporaCreate)
	s.mux.HandleFunc("DELETE /v1/corpora/{corpus}", s.handleCorporaDelete)
	// The pre-/v1 aliases are retired; -enable-legacy re-opens them as
	// deprecated pass-throughs for stragglers.
	if cfg.EnableLegacy {
		s.mux.HandleFunc("GET /search", s.deprecatedAlias("/search", "/v1/search", s.handleSearch))
		s.mux.HandleFunc("GET /stats", s.deprecatedAlias("/stats", "/v1/stats", s.handleStats))
	} else {
		s.mux.HandleFunc("GET /search", s.legacyGone("/search", "/v1/search"))
		s.mux.HandleFunc("GET /stats", s.legacyGone("/stats", "/v1/stats"))
	}
	s.rec = resilience.NewRecoverer(s.mux, cfg.Logf)
	s.tel = newServerMetrics(s.gate, s.rec, s.eng)
	s.registerDurabilityMetrics()
	s.registerSLOMetrics()
	s.registerTenantMetrics()
	s.registerTraceMetrics()
	s.mux.Handle("GET /metrics", s.tel.reg)

	// Middleware, innermost first: panic recovery around the routes, the
	// access log outside it (so recovered 500s are logged with their
	// status), request counting outside that, and request-ID assignment
	// outermost so every response — including 4xx/5xx shed and panic
	// paths — carries X-Request-ID.
	var h http.Handler = s.rec
	if cfg.AccessLog != nil {
		h = telemetry.AccessLog(h, cfg.AccessLog)
	}
	h = s.instrument(h)
	s.handler = telemetry.RequestID(h)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// newTenant assembles one corpus's serving stack from the server
// configuration: the engine plus a tenant-private admission gate and SLO
// tracker, so one tenant's load or latency cannot bleed into another's
// accounting.
func (s *Server) newTenant(name string, eng *engine.Engine) *registry.Tenant {
	cfg := s.cfg
	var tracker *slo.Tracker
	if !cfg.DisableSLO {
		tracker = slo.NewTracker(slo.DefaultObjectives(
			cfg.SLOHitP99, cfg.SLOMissP99, cfg.SLOBatchP99, cfg.SLOMutateP99,
			cfg.SLOAvailability), slo.Options{})
	}
	tn := registry.NewTenant(name, eng,
		resilience.NewGate(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait), tracker)
	if !cfg.DisableTraces {
		tn.Traces = tracestore.New(0, cfg.TraceBudget)
	}
	return tn
}

// tenantFor resolves a request's corpus: the {corpus} path segment on
// scoped routes, the default tenant on the un-scoped /v1 aliases (and on
// the legacy aliases, which have no segment either). A miss writes the
// 404 itself so handlers can plain-return.
func (s *Server) tenantFor(w http.ResponseWriter, r *http.Request) (*registry.Tenant, bool) {
	name := r.PathValue("corpus")
	if name == "" {
		telemetry.NoteCorpus(r.Context(), registry.DefaultName)
		return s.def, true
	}
	tn, ok := s.reg.Get(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown corpus %q", name)
		return nil, false
	}
	telemetry.NoteCorpus(r.Context(), tn.Name)
	return tn, true
}

// registerDurabilityMetrics exposes the default corpus's WAL and
// recovery state under the pre-registry family names. Every instrument
// reads live state through the default tenant (nil-safe when no WAL is
// attached), so the same registration serves the volatile and the
// durable boot paths; the per-corpus view lives in the labeled
// propserve_tenant_* families.
func (s *Server) registerDurabilityMetrics() {
	reg := s.tel.reg
	reg.GaugeFunc("propserve_ready",
		"1 once startup recovery (if any) has completed, 0 while replaying.",
		func() float64 { return boolGauge(s.def.Ready()) })
	reg.CounterFunc("propserve_wal_appends_total",
		"Mutation batches durably appended to the write-ahead log.",
		func() uint64 { return s.walStats().Appends })
	reg.CounterFunc("propserve_wal_fsyncs_total",
		"Successful fsync calls on the write-ahead log.",
		func() uint64 { return s.walStats().Fsyncs })
	reg.CounterFunc("propserve_wal_errors_total",
		"Failed write-ahead log I/O operations (before retry).",
		func() uint64 { return s.walStats().Errors })
	reg.CounterFunc("propserve_wal_retries_total",
		"Write-ahead log appends re-attempted after a transient failure.",
		func() uint64 { return s.walStats().Retries })
	reg.CounterFunc("propserve_wal_compactions_total",
		"Completed snapshot compactions (log prefix truncations).",
		func() uint64 { return s.walStats().Compactions })
	reg.CounterFunc("propserve_wal_torn_drops_total",
		"Torn log tails repaired at open (unacknowledged final records dropped).",
		func() uint64 { return s.walStats().TornDrops })
	reg.GaugeFunc("propserve_wal_records",
		"Records currently in the write-ahead log file.",
		func() float64 { return float64(s.walStats().Records) })
	reg.GaugeFunc("propserve_wal_bytes",
		"Size of the write-ahead log file in bytes.",
		func() float64 { return float64(s.walStats().Bytes) })
	reg.GaugeFunc("propserve_wal_broken",
		"1 when the write-ahead log has latched an unrecoverable failure and sheds mutations.",
		func() float64 { return boolGauge(s.walStats().Broken) })
	reg.GaugeFunc("propserve_wal_degraded",
		"1 when durability is degraded (recovery failed; mutations shed, reads served).",
		func() float64 { return boolGauge(s.def.DegradedReason() != "") })
	reg.GaugeFunc("propserve_wal_replayed_records",
		"WAL records replayed during the last startup recovery.",
		func() float64 { n, _, _ := s.def.RecoveryStats(); return float64(n) })
	reg.GaugeFunc("propserve_wal_recovery_seconds",
		"Wall-clock duration of the last startup recovery's replay phase.",
		func() float64 { _, _, dur := s.def.RecoveryStats(); return dur.Seconds() })
	reg.GaugeFunc("propserve_corpus_recovered_epoch",
		"Corpus epoch re-established by the last startup recovery (snapshot plus replay).",
		func() float64 { _, epoch, _ := s.def.RecoveryStats(); return float64(epoch) })
}

// registerTenantMetrics exposes the per-corpus view as labeled
// propserve_tenant_* families, read at scrape time over the registry.
// The un-labeled families above keep their pre-registry meaning — the
// default corpus — so existing dashboards survive the registry
// unchanged; these series add every tenant, default included.
func (s *Server) registerTenantMetrics() {
	reg := s.tel.reg
	corpusLabel := func(name string) []telemetry.Label {
		return []telemetry.Label{{Name: "corpus", Value: name}}
	}
	perTenant := func(value func(*registry.Tenant) float64) func() []telemetry.Series {
		return func() []telemetry.Series {
			tenants := s.reg.All()
			out := make([]telemetry.Series, 0, len(tenants))
			for _, tn := range tenants {
				out = append(out, telemetry.Series{Labels: corpusLabel(tn.Name), Value: value(tn)})
			}
			return out
		}
	}
	reg.GaugeSeriesFunc("propserve_tenant_places",
		"Places in each corpus's currently published epoch.",
		perTenant(func(tn *registry.Tenant) float64 { return float64(tn.Eng.Stats().Places) }))
	reg.GaugeSeriesFunc("propserve_tenant_corpus_epoch",
		"Currently published epoch of each corpus.",
		perTenant(func(tn *registry.Tenant) float64 { return float64(tn.Eng.Epoch()) }))
	reg.GaugeSeriesFunc("propserve_tenant_shards",
		"Spatial shards each corpus's Step-1 retrieval fans out across (0 when unsharded).",
		perTenant(func(tn *registry.Tenant) float64 { return float64(tn.Eng.Stats().Shards) }))
	reg.GaugeSeriesFunc("propserve_tenant_cache_hit_ratio",
		"Score-set LRU hit ratio of each corpus's engine (0 before any lookup).",
		perTenant(func(tn *registry.Tenant) float64 { return tn.Eng.Stats().HitRatio() }))
	reg.GaugeSeriesFunc("propserve_tenant_wal_lag_records",
		"Records in each corpus's write-ahead log not yet folded into a snapshot.",
		perTenant(func(tn *registry.Tenant) float64 { return float64(tn.WALStats().Records) }))
	reg.CounterSeriesFunc("propserve_tenant_mutations_total",
		"Mutation batches published by each corpus.",
		perTenant(func(tn *registry.Tenant) float64 { return float64(tn.Eng.Stats().Mutations) }))
	reg.CounterSeriesFunc("propserve_tenant_gate_admitted_total",
		"Requests admitted by each corpus's gate.",
		perTenant(func(tn *registry.Tenant) float64 { return float64(tn.Gate.Stats().Admitted) }))
	reg.CounterSeriesFunc("propserve_tenant_gate_shed_total",
		"Requests shed by each corpus's gate (full queue or queue timeout).",
		perTenant(func(tn *registry.Tenant) float64 {
			gs := tn.Gate.Stats()
			return float64(gs.Shed + gs.QueueTimeouts)
		}))
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// walStats snapshots the default corpus's log counters, or zeros when it
// runs without durability.
func (s *Server) walStats() wal.Stats { return s.def.WALStats() }

// registerSLOMetrics exposes the SLO tracker on /metrics through the
// read-at-scrape pattern: each family snapshots the tracker when scraped,
// so the request path pays nothing for the exposition. The label sets
// (class × window × quantile/kind) are only known from the snapshot,
// hence the series-func collectors.
func (s *Server) registerSLOMetrics() {
	if s.slo == nil {
		return
	}
	reg := s.tel.reg
	label := func(name, value string) telemetry.Label { return telemetry.Label{Name: name, Value: value} }
	reg.GaugeSeriesFunc("propserve_slo_latency_seconds",
		"Rolling-window latency quantile estimates per request class (one-bucket sketch error).",
		func() []telemetry.Series {
			var out []telemetry.Series
			for _, c := range s.slo.Snapshot().Classes {
				for _, ws := range c.Windows {
					win := slo.WindowLabel(ws.Window)
					for _, q := range []struct {
						name string
						d    time.Duration
					}{{"0.5", ws.P50}, {"0.95", ws.P95}, {"0.99", ws.P99}} {
						out = append(out, telemetry.Series{
							Labels: []telemetry.Label{label("class", c.Class), label("window", win), label("quantile", q.name)},
							Value:  q.d.Seconds(),
						})
					}
				}
			}
			return out
		})
	reg.GaugeSeriesFunc("propserve_slo_burn_rate",
		"Error-budget burn rate per class and window; sustained 1.0 exactly exhausts the budget.",
		func() []telemetry.Series {
			var out []telemetry.Series
			for _, c := range s.slo.Snapshot().Classes {
				for _, ws := range c.Windows {
					win := slo.WindowLabel(ws.Window)
					out = append(out,
						telemetry.Series{Labels: []telemetry.Label{label("class", c.Class), label("window", win), label("kind", "availability")}, Value: ws.AvailabilityBurn},
						telemetry.Series{Labels: []telemetry.Label{label("class", c.Class), label("window", win), label("kind", "latency")}, Value: ws.LatencyBurn})
				}
			}
			return out
		})
	reg.GaugeSeriesFunc("propserve_slo_budget_remaining",
		"Fraction of the error budget left per class and window (negative when overspent).",
		func() []telemetry.Series {
			var out []telemetry.Series
			for _, c := range s.slo.Snapshot().Classes {
				for _, ws := range c.Windows {
					out = append(out, telemetry.Series{
						Labels: []telemetry.Label{label("class", c.Class), label("window", slo.WindowLabel(ws.Window))},
						Value:  ws.BudgetRemaining,
					})
				}
			}
			return out
		})
	reg.CounterSeriesFunc("propserve_slo_requests_total",
		"Requests recorded by the SLO tracker since start, per class and outcome.",
		func() []telemetry.Series {
			var out []telemetry.Series
			for _, c := range s.slo.Snapshot().Classes {
				for _, o := range []struct {
					name string
					n    uint64
				}{{"ok", c.Total.OK}, {"error", c.Total.Errors}, {"shed", c.Total.Shed}} {
					out = append(out, telemetry.Series{
						Labels: []telemetry.Label{label("class", c.Class), label("outcome", o.name)},
						Value:  float64(o.n),
					})
				}
			}
			return out
		})
}

// recordSLO stores one request's latency and outcome into its SLO class
// and, when h is non-nil, stamps the exact recorded latency onto the
// response as a Server-Timing header (so load generators can compare
// client-observed latencies against the server's own samples without
// network skew), followed by the per-stage breakdown from tr's span
// tree (see serverTiming). Call it before the first body write —
// headers are frozen after that — and pass a nil header on paths that
// share a response with other work (batch elements).
func (s *Server) recordSLO(tracker *slo.Tracker, h http.Header, class string, start time.Time, status int, tr *telemetry.Trace) {
	d := time.Since(start)
	if h != nil && tracker != nil {
		h.Set("Server-Timing", serverTiming(d, tr))
	}
	tracker.Record(class, d, slo.OutcomeForStatus(status))
}

// searchClass maps the engine's cache verdict onto the SLO class: only a
// straight LRU hit counts as the hit class; computed and coalesced
// queries — and requests that failed before a verdict — count as misses,
// the class with the looser objective.
func searchClass(cache string) string {
	if cache == engine.CacheHit {
		return slo.ClassSearchHit
	}
	return slo.ClassSearchMiss
}

// sloStatsJSON renders one WindowStats as the /v1/slo JSON object. When
// the tracker holds a retained-trace exemplar for a quantile's sketch
// bucket, exemplar_trace maps the quantile name to a trace ID that
// GET /v1/traces/{id} resolves — the jump from "p99 is slow" to "here
// is a slow request's span tree".
func sloStatsJSON(ws slo.WindowStats) map[string]any {
	m := map[string]any{
		"count":             ws.Count,
		"ok":                ws.OK,
		"errors":            ws.Errors,
		"shed":              ws.Shed,
		"slow":              ws.Slow,
		"p50_ms":            slo.FormatDurationMS(ws.P50),
		"p95_ms":            slo.FormatDurationMS(ws.P95),
		"p99_ms":            slo.FormatDurationMS(ws.P99),
		"max_ms":            slo.FormatDurationMS(ws.Max),
		"mean_ms":           slo.FormatDurationMS(ws.Mean),
		"availability_burn": round3(ws.AvailabilityBurn),
		"latency_burn":      round3(ws.LatencyBurn),
		"budget_remaining":  round3(ws.BudgetRemaining),
	}
	if len(ws.Exemplars) > 0 {
		m["exemplar_trace"] = ws.Exemplars
	}
	return m
}

// handleSLO serves GET /v1/slo: every class's objective, lifetime totals,
// and per-window quantile/burn-rate stats. Quantiles carry the sketch's
// one-bucket error bound (a factor of 1.2); burn rates follow the
// multi-window error-budget convention — the 1m window answers "is it
// burning right now", the 1h window "has it burned too much lately".
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	if tn.SLO == nil {
		s.writeError(w, http.StatusForbidden, "slo tracking disabled: start the server without -slo=false")
		return
	}
	snap := tn.SLO.Snapshot()
	windows := make([]string, 0, len(snap.Windows))
	for _, d := range snap.Windows {
		windows = append(windows, slo.WindowLabel(d))
	}
	classes := map[string]any{}
	for _, c := range snap.Classes {
		wins := map[string]any{}
		for _, ws := range c.Windows {
			wins[slo.WindowLabel(ws.Window)] = sloStatsJSON(ws)
		}
		classes[c.Class] = map[string]any{
			"objective": map[string]any{
				"quantile":     c.Objective.Quantile,
				"threshold_ms": slo.FormatDurationMS(c.Objective.Threshold),
				"availability": c.Objective.Availability,
			},
			"total":   sloStatsJSON(c.Total),
			"windows": wins,
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"start_time": snap.Start.UTC().Format(time.RFC3339),
		"uptime_s":   round3(time.Since(snap.Start).Seconds()),
		"windows":    windows,
		"classes":    classes,
	})
}

// BeginRecovery marks the default corpus not ready: /readyz answers 503
// "recovering" and mutations are shed until FinishRecovery. Reads keep
// serving throughout — the engine always holds a complete epoch. The
// single-corpus boot path in main uses these Server-level delegations;
// secondary corpora go through their tenant's methods directly.
func (s *Server) BeginRecovery() { s.def.BeginRecovery() }

// FinishRecovery records the recovery outcome and flips the default
// corpus ready. Called by Recover after the WAL is replayed and attached.
func (s *Server) FinishRecovery(replayed int, epoch uint64, dur time.Duration) {
	s.def.FinishRecovery(replayed, epoch, dur)
	s.cfg.Logf("propserve: recovery complete: %d records replayed in %v, corpus at epoch %d",
		replayed, dur.Round(time.Millisecond), epoch)
}

// AttachWAL hands the default corpus the open log for compaction and
// metrics. The engine's own WAL hookup (Engine.SetWAL) is separate:
// during replay the engine must mutate without re-logging.
func (s *Server) AttachWAL(l *wal.Log) { s.def.AttachWAL(l) }

// DegradeWAL puts the default corpus into the -wal-required=false
// failure mode: reads keep serving whatever state recovery reached,
// every mutation is shed with 503, and the degradation is visible in
// /healthz, /v1/stats and propserve_wal_degraded. The tenant also flips
// ready — it is ready, just read-mostly.
func (s *Server) DegradeWAL(err error) {
	s.def.Degrade(err)
	s.cfg.Logf("propserve: DURABILITY DEGRADED, mutations disabled: %v", err)
}

// walState summarises the default corpus's durability mode for /healthz
// and /v1/stats.
func (s *Server) walState() string { return s.def.WALState() }

// deprecatedAlias serves old into the same handler as its /v1 successor,
// marking the response with a Deprecation header (draft-ietf-httpapi-
// deprecation-header) and a successor-version Link, and logging a
// one-time warning per alias.
func (s *Server) deprecatedAlias(old, successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		once, _ := s.warnOnce.LoadOrStore(old, &sync.Once{})
		once.(*sync.Once).Do(func() {
			s.cfg.Logf("propserve: deprecated route %s served; clients should move to %s", old, successor)
		})
		s.tel.deprecated.With(old).Inc()
		h(w, r)
	}
}

// legacyGone is the default fate of the retired pre-/v1 aliases: 410
// Gone carrying the same Deprecation and successor-version Link headers
// the pass-through used, so clients that never read the deprecation
// signal still learn the replacement route from the refusal.
func (s *Server) legacyGone(old, successor string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		s.tel.deprecated.With(old).Inc()
		s.writeError(w, http.StatusGone,
			"%s was retired: use %s (or start the server with -enable-legacy)", old, successor)
	}
}

// instrument counts every response by status code and observes the
// end-to-end latency.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := telemetry.NewStatusRecorder(w)
		next.ServeHTTP(sr, r)
		status := sr.Status()
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		s.tel.requests.With(strconv.Itoa(status)).Inc()
		s.tel.requestSeconds.Observe(time.Since(start).Seconds())
	})
}

// writeJSON writes v with the given status. Encode errors (a client
// hang-up mid-body, or an unencodable value — a bug) are logged with the
// request ID rather than silently dropped; the status line is already
// out, so nothing else can be done for the client.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.cfg.Logf("propserve: encoding %d response (request %s): %v",
			status, w.Header().Get(telemetry.RequestIDHeader), err)
	}
}

// writeError writes the error taxonomy payload; the request ID rides
// along in the body so clients quoting an error can be correlated with
// the access log and server log.
func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	body := map[string]string{"error": fmt.Sprintf(format, args...)}
	if id := w.Header().Get(telemetry.RequestIDHeader); id != "" {
		body["request_id"] = id
	}
	s.writeJSON(w, status, body)
}

// statusFor maps pipeline failures onto the HTTP taxonomy: deadline
// overruns are 504, cancellations and shed load 503, caller errors
// (malformed requests, invalid selection parameters, an instance too
// large for the requested algorithm) 400, everything else an internal
// 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, core.ErrCancelled) || errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, resilience.ErrShed):
		return http.StatusServiceUnavailable
	case errors.Is(err, engine.ErrWAL):
		// The batch was neither applied nor published; the server keeps
		// serving reads and the client may retry once durability returns.
		return http.StatusServiceUnavailable
	case errors.Is(err, core.ErrTooLarge):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrBadParams) || errors.Is(err, engine.ErrBadRequest):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// handleHealthz is the liveness probe: it answers 200 whenever the
// process can serve at all — including while WAL replay runs (reads work
// throughout) and in degraded durability. Orchestrators that restart on
// liveness failure must not restart a recovering server; gate traffic on
// /readyz instead.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":       "ok",
		"ready":        s.def.Ready(),
		"wal":          s.walState(),
		"places":       len(s.eng.Corpus().Places),
		"corpus_epoch": s.eng.Epoch(),
		"corpora":      s.reg.Len(),
		"inflight":     s.gate.InFlight(),
		"queued":       s.gate.Queued(),
		"capacity":     s.gate.Capacity(),
		"max_K":        s.cfg.MaxK,
		"timeout_s":    s.cfg.QueryTimeout.Seconds(),
	})
}

// handleReadyz is the readiness probe: 503 with a "recovering" body
// while any corpus's startup WAL replay runs, 200 "ready" once every
// corpus is at its recovered epoch and accepts mutations.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	var recovering []string
	for _, tn := range s.reg.All() {
		if !tn.Ready() {
			recovering = append(recovering, tn.Name)
		}
	}
	if len(recovering) > 0 {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"status":       "recovering",
			"corpora":      recovering,
			"corpus_epoch": s.eng.Epoch(),
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":       "ready",
		"wal":          s.walState(),
		"corpus_epoch": s.eng.Epoch(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	gs := s.gate.Stats()
	es := s.eng.Stats()
	ws := s.walStats()
	replayed, recoveredEpoch, recoveryDur := s.def.RecoveryStats()
	walSection := map[string]interface{}{
		"state":            s.walState(),
		"enabled":          s.def.WAL() != nil,
		"replayed_records": uint64(replayed),
		"recovery_seconds": round3(recoveryDur.Seconds()),
		"recovered_epoch":  recoveredEpoch,
	}
	if l := s.def.WAL(); l != nil {
		walSection["sync"] = l.SyncPolicy().String()
		walSection["appends"] = ws.Appends
		walSection["fsyncs"] = ws.Fsyncs
		walSection["errors"] = ws.Errors
		walSection["retries"] = ws.Retries
		walSection["records"] = ws.Records
		walSection["bytes"] = ws.Bytes
		walSection["compactions"] = ws.Compactions
		walSection["torn_drops"] = ws.TornDrops
		walSection["last_epoch"] = ws.LastEpoch
		walSection["broken"] = ws.Broken
	}
	if reason := s.def.DegradedReason(); reason != "" {
		walSection["degraded_reason"] = reason
	}
	// The registry view: one summary per corpus, default included — the
	// rest of this payload stays the default corpus's pre-registry shape.
	corpora := map[string]interface{}{}
	for _, tn := range s.reg.All() {
		corpora[tn.Name] = s.corpusSummary(tn)
	}
	// Corpus facts come from the engine's published snapshot, not the
	// registration-time dataset: mutations move the former, never the
	// latter.
	cur := s.eng.Corpus()
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"server":       s.serverSection(),
		"dataset":      cur.Config.Name,
		"places":       len(cur.Places),
		"vocabulary":   cur.Dict.Len(),
		"extent":       cur.Config.Extent,
		"corpus_epoch": es.Epoch,
		"corpus": map[string]interface{}{
			"epoch":           es.Epoch,
			"mutations":       es.Mutations,
			"places_upserted": es.PlacesUpserted,
			"places_deleted":  es.PlacesDeleted,
			"swept_entries":   es.SweptEntries,
			"mutation_api":    s.cfg.EnableMutation,
		},
		"corpora": corpora,
		"wal":     walSection,
		"gate": map[string]interface{}{
			"admitted":       gs.Admitted,
			"shed":           gs.Shed,
			"queue_timeouts": gs.QueueTimeouts,
			"cancelled":      gs.Cancelled,
			"inflight":       gs.InFlight,
			"queued":         gs.Queued,
			"capacity":       gs.Capacity,
			"queue_capacity": gs.QueueCapacity,
		},
		"engine": map[string]interface{}{
			"cache": map[string]interface{}{
				"hits":      es.Hits,
				"misses":    es.Misses,
				"coalesced": es.Coalesced,
				"evictions": es.Evictions,
				"entries":   es.Entries,
				"capacity":  es.Capacity,
				"hit_ratio": round3(es.HitRatio()),
			},
			"builds":       es.Builds,
			"build_errors": es.BuildErrors,
			"explains":     es.Explains,
			"shards":       es.Shards,
			"tables": map[string]interface{}{
				"squared":            es.SquaredTables,
				"radial_resolutions": es.RadialResolutions,
				"bytes":              es.TableBytes,
			},
		},
		"panics_recovered": s.rec.Panics(),
	})
}

// serverSection is the /v1/stats process-identity block: how long this
// instance has been up, what built it, and when it started — the facts a
// load report needs to stamp which server produced its numbers.
func (s *Server) serverSection() map[string]interface{} {
	sec := map[string]interface{}{
		"uptime_s":    round3(time.Since(s.start).Seconds()),
		"start_time":  s.start.UTC().Format(time.RFC3339),
		"start_epoch": s.start.Unix(),
		"go_version":  runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				sec["build"] = kv.Value
				break
			}
		}
	}
	return sec
}

// flushSpans records a request trace's spans on the per-stage histogram.
func (s *Server) flushSpans(tr *telemetry.Trace) {
	for _, sp := range tr.Spans() {
		s.tel.stageSeconds.With(sp.Stage).Observe(sp.Dur.Seconds())
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	start := time.Now()
	// One trace per request; the pipeline stages (engine, core, textctx,
	// grid) find it through the context and record their spans on it.
	// Whether the finished trace is retained is a tail decision — fin
	// accumulates the facts, the deferred finish covers error and panic
	// exits, and the success path finishes explicitly so the retained ID
	// reaches the slow-query line.
	tr, r := s.startTrace(w, r)
	defer s.flushSpans(tr)
	fin := &traceFinish{
		endpoint:  "/v1/search",
		requestID: w.Header().Get(telemetry.RequestIDHeader),
		class:     slo.ClassSearchMiss,
		exemplar:  true,
	}
	defer s.finishTrace(r.Context(), tn, tr, start, fin)

	endParse := tr.StartSpan(telemetry.StageParse)
	req, err := tn.Eng.RequestFromValues(r.URL.Query())
	if err == nil {
		_, err = req.Normalize()
	}
	endParse()
	if err != nil {
		fin.status = http.StatusBadRequest
		s.recordSLO(tn.SLO, w.Header(), slo.ClassSearchMiss, start, http.StatusBadRequest, tr)
		s.writeError(w, http.StatusBadRequest, "bad parameter: %v", err)
		return
	}

	// Graceful degradation, part 1: K is the unit of quadratic work, so
	// Normalize clamps it to the engine's ceiling; report the clamp.
	degraded := map[string]any{}
	if from := req.ClampedFrom(); from > 0 {
		degraded["K_clamped_from"] = from
		s.tel.degraded.With("k_clamp").Inc()
		fin.degraded = true
	}

	// The deadline budget covers admission wait plus compute, and is
	// bound to the client connection: a hang-up cancels r.Context() and
	// with it every checkpointed loop downstream.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()

	waitStart := time.Now()
	endWait := tr.StartSpan(telemetry.StageAdmission)
	release, err := tn.Gate.Acquire(ctx)
	endWait()
	s.tel.queueWait.Observe(time.Since(waitStart).Seconds())
	if err != nil {
		status := statusFor(err)
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
		}
		fin.status = status
		s.recordSLO(tn.SLO, w.Header(), slo.ClassSearchMiss, start, status, tr)
		s.writeError(w, status, "admission: %v", err)
		return
	}
	defer release()

	// Graceful degradation, part 2: if queueing consumed most of the
	// budget, downshift the exact spatial method to the squared grid
	// (Section 7.1.1) rather than miss the deadline — but only when the
	// grid is actually the faster path for this instance size: below the
	// measured crossover the approximation costs more than exact, so the
	// downshift would trade accuracy for *worse* latency. Either way the
	// decision and its evidence (remaining budget, instance size) are
	// reported in diagnostics.degraded.
	if req.SpatialMethod() == core.SpatialExact {
		if remaining, ok := resilience.Remaining(ctx); ok && remaining < s.cfg.DegradeBudget {
			if grid.SquaredLikelyFaster(req.K) {
				req.Spatial = "squared"
				if _, err := req.Normalize(); err != nil { // re-resolve; cannot fail on a valid request
					fin.status = http.StatusInternalServerError
					s.recordSLO(tn.SLO, w.Header(), slo.ClassSearchMiss, start, http.StatusInternalServerError, tr)
					s.writeError(w, http.StatusInternalServerError, "downshift: %v", err)
					return
				}
				degraded["spatial"] = "exact→squared-grid (low budget)"
				s.tel.degraded.With("spatial_downshift").Inc()
				fin.degraded = true
			} else {
				// The request stays exact and undegraded; the skipped
				// decision is still surfaced so a budget-starved small
				// query is diagnosable.
				degraded["spatial"] = fmt.Sprintf("downshift skipped (K=%d below grid crossover)", req.K)
				s.tel.degraded.With("spatial_downshift_skipped").Inc()
			}
			degraded["remaining_budget_ms"] = round3(remaining.Seconds() * 1e3)
		}
	}

	res, err := tn.Eng.Query(ctx, req)
	if err != nil {
		fin.status = statusFor(err)
		s.recordSLO(tn.SLO, w.Header(), slo.ClassSearchMiss, start, fin.status, tr)
		s.writeError(w, fin.status, "%v", err)
		return
	}
	telemetry.NoteCache(r.Context(), res.Cache)
	telemetry.NoteEpoch(r.Context(), req.Epoch())

	resp := tn.Eng.BuildResponse(req, res, tr)
	resp.RequestID = w.Header().Get(telemetry.RequestIDHeader)
	if len(degraded) > 0 {
		resp.Diagnostics["degraded"] = degraded
	}
	// The body is encoded to a buffer first so the encode span is closed
	// — and can appear as the render entry of the Server-Timing header —
	// before any header freezes.
	endEncode := tr.StartSpan(telemetry.StageEncode)
	body, err := json.Marshal(resp)
	endEncode()
	if err != nil {
		fin.status = http.StatusInternalServerError
		s.recordSLO(tn.SLO, w.Header(), slo.ClassSearchMiss, start, fin.status, tr)
		s.writeError(w, fin.status, "encode: %v", err)
		return
	}
	fin.status, fin.class = http.StatusOK, searchClass(res.Cache)
	fin.cache, fin.epoch = res.Cache, req.Epoch()
	s.recordSLO(tn.SLO, w.Header(), fin.class, start, http.StatusOK, tr)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	w.Write([]byte("\n"))
	s.finishTrace(r.Context(), tn, tr, start, fin)
	s.maybeLogSlow("/v1/search", resp.RequestID, tn.Name, fin.traceID, req, tr, res.Cache, nil)
}

// handleExplain serves GET /v1/explain: the /v1/search parameter schema
// evaluated with Engine.Explain, which bypasses the score-set cache and
// recomputes both steps under an introspection collector. The response is
// the search payload plus an "explain" object carrying the greedy trace,
// Step-1 pruning counters, and sampled grid-approximation error. Spatial
// downshifting is deliberately skipped: an explain exists to show what the
// requested configuration does, not a degraded stand-in.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.EnableExplain {
		s.writeError(w, http.StatusForbidden, "explain disabled: start the server with -enable-explain")
		return
	}
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	start := time.Now()
	tr, r := s.startTrace(w, r)
	defer s.flushSpans(tr)
	// Explains have no SLO class of their own; the miss class's slow
	// threshold governs retention (an explain is at least a miss's work),
	// but no exemplar is noted — exemplars must point at tracked traffic.
	fin := &traceFinish{
		endpoint:  "/v1/explain",
		requestID: w.Header().Get(telemetry.RequestIDHeader),
		class:     slo.ClassSearchMiss,
	}
	defer s.finishTrace(r.Context(), tn, tr, start, fin)

	endParse := tr.StartSpan(telemetry.StageParse)
	req, err := tn.Eng.RequestFromValues(r.URL.Query())
	if err == nil {
		_, err = req.Normalize()
	}
	endParse()
	if err != nil {
		fin.status = http.StatusBadRequest
		s.writeError(w, http.StatusBadRequest, "bad parameter: %v", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()

	waitStart := time.Now()
	endWait := tr.StartSpan(telemetry.StageAdmission)
	release, err := tn.Gate.Acquire(ctx)
	endWait()
	s.tel.queueWait.Observe(time.Since(waitStart).Seconds())
	if err != nil {
		status := statusFor(err)
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
		}
		fin.status = status
		s.writeError(w, status, "admission: %v", err)
		return
	}
	defer release()

	res, rep, err := tn.Eng.Explain(ctx, req)
	if err != nil {
		fin.status = statusFor(err)
		s.writeError(w, fin.status, "%v", err)
		return
	}
	telemetry.NoteCache(r.Context(), res.Cache)
	telemetry.NoteEpoch(r.Context(), req.Epoch())
	if rep.Pruning != nil {
		s.tel.msjhPruned.Set(rep.Pruning.PrunedRatio)
	}
	if rep.Grid != nil && rep.Grid.SampledPairs > 0 {
		s.tel.gridErr.Set(rep.Grid.MeanAbsError)
	}

	resp := tn.Eng.BuildResponse(req, res, tr)
	resp.RequestID = w.Header().Get(telemetry.RequestIDHeader)
	resp.Explain = rep
	endEncode := tr.StartSpan(telemetry.StageEncode)
	s.writeJSON(w, http.StatusOK, resp)
	endEncode()
	fin.status, fin.cache, fin.epoch = http.StatusOK, res.Cache, req.Epoch()
	s.finishTrace(r.Context(), tn, tr, start, fin)
	s.maybeLogSlow("/v1/explain", resp.RequestID, tn.Name, fin.traceID, req, tr, res.Cache, rep)
}

// slowQueryEntry is one slow-query log line: enough context to understand
// the query without the access log, the full stage breakdown, and — for
// explain requests — the algorithm-level introspection report.
type slowQueryEntry struct {
	Time        string         `json:"time"`
	RequestID   string         `json:"request_id,omitempty"`
	Endpoint    string         `json:"endpoint"`
	Corpus      string         `json:"corpus,omitempty"`
	TraceID     string         `json:"trace_id,omitempty"`
	DurationMS  float64        `json:"duration_ms"`
	ThresholdMS float64        `json:"threshold_ms"`
	Query       map[string]any `json:"query"`
	StageMS     map[string]any `json:"stage_ms"`
	Cache       string         `json:"cache,omitempty"`
	CorpusEpoch uint64         `json:"corpus_epoch"`
	Explain     any            `json:"explain,omitempty"`
}

// maybeLogSlow emits one structured line when the request's trace elapsed
// beyond the slow-query threshold. The writer preference is SlowQueryLog,
// then the access-log writer, then Logf; concurrent emitters are
// serialised so lines never interleave. traceID is the retained-trace ID
// when the tail sampler kept this request ("" otherwise — though a
// query past the slow threshold is always retained while tracing is on,
// so the line normally links straight to /v1/traces/{id}).
func (s *Server) maybeLogSlow(endpoint, requestID, corpus, traceID string, req *engine.QueryRequest, tr *telemetry.Trace, cache string, explainRep any) {
	if s.cfg.SlowQuery <= 0 {
		return
	}
	elapsed := tr.Elapsed()
	if elapsed < s.cfg.SlowQuery {
		return
	}
	s.tel.slowQueries.Inc()
	stages := map[string]any{}
	for stage, d := range tr.Stages() {
		stages[stage] = round3(d.Seconds() * 1e3)
	}
	e := slowQueryEntry{
		Time:        time.Now().UTC().Format(time.RFC3339Nano),
		RequestID:   requestID,
		Endpoint:    endpoint,
		Corpus:      corpus,
		TraceID:     traceID,
		DurationMS:  round3(elapsed.Seconds() * 1e3),
		ThresholdMS: round3(s.cfg.SlowQuery.Seconds() * 1e3),
		Query: map[string]any{
			"x": req.X, "y": req.Y, "keywords": req.Keywords,
			"K": req.K, "k": req.SmallK,
			"lambda": req.Lambda, "gamma": req.Gamma,
			"algo": req.Algo, "spatial": req.Spatial,
		},
		StageMS:     stages,
		Cache:       cache,
		CorpusEpoch: req.Epoch(),
		Explain:     explainRep,
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	out := s.cfg.SlowQueryLog
	if out == nil {
		out = s.cfg.AccessLog
	}
	if out == nil {
		s.cfg.Logf("propserve: slow query: %s", line)
		return
	}
	s.slowMu.Lock()
	out.Write(append(line, '\n'))
	s.slowMu.Unlock()
}

// batchRequest is the POST /v1/batch payload: a list of QueryRequest
// objects. Elements are decoded individually so one malformed query
// fails only its own slot.
type batchRequest struct {
	Queries []json.RawMessage `json:"queries"`
}

// batchItem is one element of a batch response, in input order.
type batchItem struct {
	Index    int                   `json:"index"`
	Status   int                   `json:"status"`
	Error    string                `json:"error,omitempty"`
	Response *engine.QueryResponse `json:"response,omitempty"`
}

// batchResponse is the POST /v1/batch response envelope.
type batchResponse struct {
	RequestID string      `json:"request_id,omitempty"`
	Count     int         `json:"count"`
	Results   []batchItem `json:"results"`
}

// handleBatch runs up to MaxBatch queries through a bounded worker pool.
// Each element is admitted through the same gate as single searches (so
// a batch cannot starve interactive traffic beyond the shared bound),
// carries its own deadline budget, and reports its own status from the
// same error taxonomy; identical elements coalesce inside the engine.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	var br batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&br); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad batch body: %v", err)
		return
	}
	if len(br.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch: provide a non-empty \"queries\" array")
		return
	}
	if len(br.Queries) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest, "batch of %d queries exceeds the limit of %d", len(br.Queries), s.cfg.MaxBatch)
		return
	}
	s.tel.batches.Inc()
	s.tel.batchQueries.Add(uint64(len(br.Queries)))

	items := make([]batchItem, len(br.Queries))
	jobs := make(chan int)
	workers := s.cfg.BatchWorkers
	if workers > len(br.Queries) {
		workers = len(br.Queries)
	}
	requestID := w.Header().Get(telemetry.RequestIDHeader)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				items[idx] = s.batchElement(r.Context(), tn, requestID, idx, br.Queries[idx])
			}
		}()
	}
	for idx := range br.Queries {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	s.writeJSON(w, http.StatusOK, batchResponse{
		RequestID: w.Header().Get(telemetry.RequestIDHeader),
		Count:     len(items),
		Results:   items,
	})
}

// batchElement runs one batch query end to end: decode over the corpus
// defaults, validate, admit through the gate, query the engine. Panics
// are contained to the element (batch workers run outside the HTTP
// recovery middleware's goroutine). Each element gets its own trace —
// spans never bleed across elements — while requestID ties every element's
// response and slow-query line back to the parent batch request.
func (s *Server) batchElement(parent context.Context, tn *registry.Tenant, requestID string, idx int, raw json.RawMessage) (item batchItem) {
	start := time.Now()
	item.Index = idx
	tr := telemetry.NewTrace()
	// Elements finish individually: a nil note context keeps the parent
	// batch's access-log line from adopting one element's trace ID.
	fin := &traceFinish{endpoint: "/v1/batch", requestID: requestID, class: slo.ClassBatch, exemplar: true}
	defer func() {
		if v := recover(); v != nil {
			s.cfg.Logf("propserve: panic in batch element %d: %v", idx, v)
			item = batchItem{Index: idx, Status: http.StatusInternalServerError, Error: "internal server error"}
		}
		// Each element is one unit of the batch SLO class; the shared
		// response envelope means no per-element Server-Timing header.
		s.recordSLO(tn.SLO, nil, slo.ClassBatch, start, item.Status, tr)
		fin.status = item.Status
		s.finishTrace(nil, tn, tr, start, fin)
	}()
	defer s.flushSpans(tr)

	endParse := tr.StartSpan(telemetry.StageParse)
	req := tn.Eng.NewRequest()
	err := json.Unmarshal(raw, req)
	if err == nil {
		_, err = req.Normalize()
	}
	endParse()
	if err != nil {
		item.Status = http.StatusBadRequest
		item.Error = fmt.Sprintf("bad query: %v", err)
		return item
	}

	ctx, cancel := context.WithTimeout(parent, s.cfg.QueryTimeout)
	defer cancel()
	ctx = telemetry.WithTrace(ctx, tr)

	waitStart := time.Now()
	endWait := tr.StartSpan(telemetry.StageAdmission)
	release, err := tn.Gate.Acquire(ctx)
	endWait()
	s.tel.queueWait.Observe(time.Since(waitStart).Seconds())
	if err != nil {
		item.Status = statusFor(err)
		item.Error = fmt.Sprintf("admission: %v", err)
		return item
	}
	defer release()

	res, err := tn.Eng.Query(ctx, req)
	if err != nil {
		item.Status = statusFor(err)
		item.Error = err.Error()
		return item
	}
	item.Status = http.StatusOK
	item.Response = tn.Eng.BuildResponse(req, res, tr)
	item.Response.RequestID = requestID
	fin.status, fin.cache, fin.epoch = http.StatusOK, res.Cache, req.Epoch()
	s.finishTrace(nil, tn, tr, start, fin)
	s.maybeLogSlow("/v1/batch", requestID, tn.Name, fin.traceID, req, tr, res.Cache, nil)
	return item
}

// corpusResponse is the POST /v1/corpus payload: the engine's mutation
// report plus the request ID for log correlation.
type corpusResponse struct {
	RequestID string `json:"request_id,omitempty"`
	engine.MutationResult
}

// handleCorpus serves POST /v1/corpus: one upsert/delete batch applied
// atomically and published as the next corpus epoch. The endpoint is an
// operator opt-in (-enable-mutation), size-capped (-max-mutation-batch),
// and admitted through the same gate as queries — a mutation storm sheds
// with 503 exactly like a query storm, and an index rebuild counts
// against the shared compute bound. In-flight queries are never
// disturbed: they finish on the epoch they pinned at parse time.
func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.EnableMutation {
		s.writeError(w, http.StatusForbidden, "corpus mutation disabled: start the server with -enable-mutation")
		return
	}
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	// Everything past the enablement gate is mutation-class load; done
	// stamps the exit status exactly once per request. Mutations carry a
	// trace too — mostly for the tail rules: a shed or WAL-refused
	// mutation is exactly the request an operator goes looking for.
	start := time.Now()
	tr, r := s.startTrace(w, r)
	defer s.flushSpans(tr)
	fin := &traceFinish{
		endpoint:  "/v1/corpus",
		requestID: w.Header().Get(telemetry.RequestIDHeader),
		class:     slo.ClassMutate,
		exemplar:  true,
	}
	defer s.finishTrace(r.Context(), tn, tr, start, fin)
	recorded := false
	done := func(code int) {
		if !recorded {
			recorded = true
			fin.status = code
			s.recordSLO(tn.SLO, w.Header(), slo.ClassMutate, start, code, tr)
		}
	}
	// Durability gates, checked before the body is even read: mutations
	// are shed while replay rebuilds the corpus (accepting one would fork
	// history from a state that is still moving) and shed permanently in
	// degraded mode (an unloggable mutation would be lost by the next
	// restart, silently breaking the acknowledged-durability contract).
	if !tn.Ready() {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
		done(http.StatusServiceUnavailable)
		s.writeError(w, http.StatusServiceUnavailable, "recovering: corpus mutations resume when WAL replay completes")
		return
	}
	if reason := tn.DegradedReason(); reason != "" {
		done(http.StatusServiceUnavailable)
		s.writeError(w, http.StatusServiceUnavailable, "durability degraded, mutations disabled: %s", reason)
		return
	}
	var m engine.Mutation
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&m); err != nil {
		done(http.StatusBadRequest)
		s.writeError(w, http.StatusBadRequest, "bad mutation body: %v", err)
		return
	}
	if m.Size() == 0 {
		done(http.StatusBadRequest)
		s.writeError(w, http.StatusBadRequest, "empty mutation: provide \"upserts\" and/or \"deletes\"")
		return
	}
	if m.Size() > s.cfg.MaxMutationBatch {
		done(http.StatusBadRequest)
		s.writeError(w, http.StatusBadRequest, "mutation batch of %d operations exceeds the limit of %d",
			m.Size(), s.cfg.MaxMutationBatch)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()
	release, err := tn.Gate.Acquire(ctx)
	if err != nil {
		status := statusFor(err)
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
		}
		done(status)
		s.writeError(w, status, "admission: %v", err)
		return
	}
	defer release()

	res, err := tn.Eng.Mutate(ctx, m)
	if err != nil {
		status := statusFor(err)
		if errors.Is(err, engine.ErrWAL) {
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
		}
		done(status)
		s.writeError(w, status, "%v", err)
		return
	}
	s.tel.mutations.Inc()
	s.maybeCompactAsync(tn)
	telemetry.NoteEpoch(r.Context(), res.Epoch)
	fin.epoch = res.Epoch
	done(http.StatusOK)
	s.writeJSON(w, http.StatusOK, corpusResponse{
		RequestID:      w.Header().Get(telemetry.RequestIDHeader),
		MutationResult: *res,
	})
}

// corpusSummary is one tenant's entry in GET /v1/corpora and the
// /v1/stats "corpora" section: corpus size and epoch, cache efficiency,
// shard count, and how far the WAL has run ahead of the last snapshot
// (its lag — records a restart would have to replay).
func (s *Server) corpusSummary(tn *registry.Tenant) map[string]interface{} {
	es := tn.Eng.Stats()
	ws := tn.WALStats()
	return map[string]interface{}{
		"places":          es.Places,
		"epoch":           es.Epoch,
		"shards":          es.Shards,
		"mutations":       es.Mutations,
		"cache_hit_ratio": round3(es.HitRatio()),
		"wal": map[string]interface{}{
			"state":       tn.WALState(),
			"lag_records": ws.Records,
			"last_epoch":  ws.LastEpoch,
		},
	}
}

// handleCorporaList serves GET /v1/corpora: every registered corpus with
// its per-tenant stats, sorted by name.
func (s *Server) handleCorporaList(w http.ResponseWriter, _ *http.Request) {
	corpora := map[string]interface{}{}
	for _, tn := range s.reg.All() {
		corpora[tn.Name] = s.corpusSummary(tn)
	}
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"count":   len(corpora),
		"corpora": corpora,
	})
}

// createCorpusRequest is the POST /v1/corpora payload. Places and Seed
// parameterise the generated corpus; Shards and CacheEntries override
// the server-wide defaults for this tenant (0 inherits, shards=1 forces
// unsharded).
type createCorpusRequest struct {
	Name         string `json:"name"`
	Places       int    `json:"places"`
	Seed         int64  `json:"seed"`
	Shards       int    `json:"shards"`
	CacheEntries int    `json:"cache_entries"`
}

// handleCorporaCreate serves POST /v1/corpora: registers a new named
// corpus with its own engine, gate, SLO tracker and cache budget.
// Registry administration rides the -enable-mutation opt-in — creating
// a corpus mutates server state exactly like mutating one. Under
// -corpora-dir the corpus is durable: it logs to its own WAL under
// <corpora-dir>/<name> and, when files from a previous life of the name
// exist there, recovers from them instead of generating fresh places.
func (s *Server) handleCorporaCreate(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.EnableMutation {
		s.writeError(w, http.StatusForbidden, "corpus administration disabled: start the server with -enable-mutation")
		return
	}
	var cr createCorpusRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&cr); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad corpus body: %v", err)
		return
	}
	if !registry.ValidName(cr.Name) {
		s.writeError(w, http.StatusBadRequest,
			"invalid corpus name %q: want lowercase [a-z0-9][a-z0-9_-]{0,63}", cr.Name)
		return
	}
	if cr.Places < 0 || cr.Places > 200_000 {
		s.writeError(w, http.StatusBadRequest, "places %d out of range [0, 200000]", cr.Places)
		return
	}
	if cr.Places == 0 {
		cr.Places = 1000
	}
	gen := func() (*dataset.Dataset, error) {
		dc := dataset.DBpediaLike(cr.Seed)
		dc.Places = cr.Places
		return dataset.Generate(dc)
	}
	opts := engineOptions(s.cfg)
	if cr.Shards != 0 {
		opts.Shards = cr.Shards
	}
	if cr.CacheEntries > 0 {
		opts.CacheEntries = cr.CacheEntries
	}
	var dir string
	if s.cfg.CorporaDir != "" {
		dir = filepath.Join(s.cfg.CorporaDir, cr.Name)
	}
	tn, err := s.bootCorpus(r.Context(), cr.Name, dir, gen, opts)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, registry.ErrExists) {
			status = http.StatusConflict
		}
		s.writeError(w, status, "create corpus %q: %v", cr.Name, err)
		return
	}
	s.cfg.Logf("propserve: corpus %q created: %d places, %d shards, durable=%v",
		tn.Name, tn.Eng.Stats().Places, tn.Eng.Stats().Shards, dir != "")
	s.writeJSON(w, http.StatusCreated, map[string]interface{}{
		"name":    tn.Name,
		"durable": dir != "",
		"stats":   s.corpusSummary(tn),
	})
}

// handleCorporaDelete serves DELETE /v1/corpora/{corpus}. The default
// corpus is not deletable — the un-scoped /v1 aliases depend on it.
// Deletion unregisters the tenant (requests already routed to it finish
// undisturbed) and closes its WAL; the log and snapshot files stay on
// disk, so re-creating the name recovers its state.
func (s *Server) handleCorporaDelete(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.EnableMutation {
		s.writeError(w, http.StatusForbidden, "corpus administration disabled: start the server with -enable-mutation")
		return
	}
	name := r.PathValue("corpus")
	if name == registry.DefaultName {
		s.writeError(w, http.StatusForbidden, "the default corpus cannot be deleted")
		return
	}
	tn, ok := s.reg.Remove(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown corpus %q", name)
		return
	}
	if l := tn.WAL(); l != nil {
		l.Close()
	}
	epoch := tn.Eng.Epoch()
	s.cfg.Logf("propserve: corpus %q deleted at epoch %d", name, epoch)
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"deleted": name,
		"epoch":   epoch,
	})
}

func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }
