package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/textctx"
)

// Config carries the serving-path resilience knobs. Zero values select
// the defaults noted on each field.
type Config struct {
	// QueryTimeout is the per-request deadline budget covering admission
	// wait, scoring and selection. Default 10s.
	QueryTimeout time.Duration
	// MaxInFlight bounds concurrent /search requests. Default 2×GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot; beyond it requests are
	// shed with 503. Default MaxInFlight.
	MaxQueue int
	// QueueWait is the longest a request may wait for admission before it
	// is shed. Default 1s.
	QueueWait time.Duration
	// MaxK caps the retrieval size K: Step 1 is quadratic in K, so this is
	// the server's unit of work ceiling. Larger requests are clamped and
	// the clamp reported in diagnostics. Default 2000.
	MaxK int
	// DegradeBudget is the remaining-budget threshold below which the
	// exact spatial method is downshifted to the squared grid. Default
	// QueryTimeout/4.
	DegradeBudget time.Duration
	// RetryAfter is the Retry-After hint attached to 503 shed responses.
	// Default 1s.
	RetryAfter time.Duration
	// Logf receives panic reports from the recovery middleware and
	// response-encoding errors. Default log.Printf.
	Logf func(format string, args ...any)
	// AccessLog, when non-nil, receives one structured JSON line per
	// request (see telemetry.AccessEntry). Nil disables access logging.
	AccessLog io.Writer
}

func (c Config) withDefaults() Config {
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 10 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = c.MaxInFlight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.MaxK <= 0 {
		c.MaxK = 2000
	}
	if c.DegradeBudget <= 0 {
		c.DegradeBudget = c.QueryTimeout / 4
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// serverMetrics bundles the Prometheus registry and the instruments the
// handlers mutate directly. Gate and panic counters are registered as
// read-at-scrape functions over their sources of truth
// (resilience.Gate.Stats, resilience.Recoverer.Panics) so there is no
// double bookkeeping.
type serverMetrics struct {
	reg            *telemetry.Registry
	requests       *telemetry.CounterVec   // propserve_requests_total{code}
	requestSeconds *telemetry.Histogram    // propserve_request_seconds
	stageSeconds   *telemetry.HistogramVec // propserve_stage_seconds{stage}
	queueWait      *telemetry.Histogram    // propserve_gate_queue_wait_seconds
	degraded       *telemetry.CounterVec   // propserve_degraded_total{reason}
}

func newServerMetrics(gate *resilience.Gate, rec *resilience.Recoverer) *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("propserve_requests_total",
			"HTTP requests served, by status code.", "code"),
		requestSeconds: reg.Histogram("propserve_request_seconds",
			"End-to-end request latency in seconds.", telemetry.DefBuckets),
		stageSeconds: reg.HistogramVec("propserve_stage_seconds",
			"Per-stage pipeline latency in seconds (parse, admission_wait, retrieve, step1_pcs, step1_pss, step2_select, encode).",
			"stage", telemetry.DefBuckets),
		queueWait: reg.Histogram("propserve_gate_queue_wait_seconds",
			"Time spent waiting for admission at the gate, in seconds.", telemetry.DefBuckets),
		degraded: reg.CounterVec("propserve_degraded_total",
			"Graceful-degradation decisions applied, by reason.", "reason"),
	}
	reg.GaugeFunc("propserve_gate_inflight",
		"Requests currently holding an admission slot.",
		func() float64 { return float64(gate.InFlight()) })
	reg.GaugeFunc("propserve_gate_queued",
		"Requests currently waiting for an admission slot.",
		func() float64 { return float64(gate.Queued()) })
	reg.GaugeFunc("propserve_gate_capacity",
		"Maximum concurrent in-flight requests.",
		func() float64 { return float64(gate.Capacity()) })
	reg.CounterFunc("propserve_gate_admitted_total",
		"Requests admitted by the gate.",
		func() uint64 { return gate.Stats().Admitted })
	reg.CounterFunc("propserve_gate_shed_total",
		"Requests shed immediately because the wait queue was full.",
		func() uint64 { return gate.Stats().Shed })
	reg.CounterFunc("propserve_gate_queue_timeout_total",
		"Requests shed after waiting the maximum queue time.",
		func() uint64 { return gate.Stats().QueueTimeouts })
	reg.CounterFunc("propserve_gate_cancelled_total",
		"Requests whose context terminated while queued.",
		func() uint64 { return gate.Stats().Cancelled })
	reg.CounterFunc("propserve_panics_recovered_total",
		"Handler panics recovered by the resilience middleware.",
		func() uint64 { return rec.Panics() })
	return m
}

// Server serves proportional search over one corpus. It is safe for
// concurrent use: the dataset and precomputed grid tables are read-only
// after construction, and every request builds its own score set. The
// serving path is guarded end to end: panics become 500s, /search sits
// behind a bounded admission gate, and every query carries a deadline
// budget that the scoring and selection loops observe cooperatively.
// Every request is assigned an X-Request-ID and, via internal/telemetry,
// yields a per-stage span breakdown exposed in /search diagnostics and
// in the propserve_stage_seconds histogram on /metrics.
type Server struct {
	handler http.Handler
	mux     *http.ServeMux
	data    *dataset.Dataset
	sqTbl   *grid.SquaredTable
	cfg     Config
	gate    *resilience.Gate
	rec     *resilience.Recoverer
	tel     *serverMetrics
}

// NewServer builds the handler tree over d with the given resilience
// configuration (zero values select defaults).
func NewServer(d *dataset.Dataset, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		mux:   http.NewServeMux(),
		data:  d,
		sqTbl: grid.NewSquaredTable(grid.SideForCells(1024)),
		cfg:   cfg,
		gate:  resilience.NewGate(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /search", s.handleSearch)
	s.rec = resilience.NewRecoverer(s.mux, cfg.Logf)
	s.tel = newServerMetrics(s.gate, s.rec)
	s.mux.Handle("GET /metrics", s.tel.reg)

	// Middleware, innermost first: panic recovery around the routes, the
	// access log outside it (so recovered 500s are logged with their
	// status), request counting outside that, and request-ID assignment
	// outermost so every response — including 4xx/5xx shed and panic
	// paths — carries X-Request-ID.
	var h http.Handler = s.rec
	if cfg.AccessLog != nil {
		h = telemetry.AccessLog(h, cfg.AccessLog)
	}
	h = s.instrument(h)
	s.handler = telemetry.RequestID(h)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// instrument counts every response by status code and observes the
// end-to-end latency.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := telemetry.NewStatusRecorder(w)
		next.ServeHTTP(sr, r)
		status := sr.Status()
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		s.tel.requests.With(strconv.Itoa(status)).Inc()
		s.tel.requestSeconds.Observe(time.Since(start).Seconds())
	})
}

// writeJSON writes v with the given status. Encode errors (a client
// hang-up mid-body, or an unencodable value — a bug) are logged with the
// request ID rather than silently dropped; the status line is already
// out, so nothing else can be done for the client.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.cfg.Logf("propserve: encoding %d response (request %s): %v",
			status, w.Header().Get(telemetry.RequestIDHeader), err)
	}
}

// writeError writes the error taxonomy payload; the request ID rides
// along in the body so clients quoting an error can be correlated with
// the access log and server log.
func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	body := map[string]string{"error": fmt.Sprintf(format, args...)}
	if id := w.Header().Get(telemetry.RequestIDHeader); id != "" {
		body["request_id"] = id
	}
	s.writeJSON(w, status, body)
}

// statusFor maps pipeline failures onto the HTTP taxonomy: deadline
// overruns are 504, cancellations and shed load 503, an instance too
// large for the requested algorithm 400, everything else an internal 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, core.ErrCancelled) || errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, resilience.ErrShed):
		return http.StatusServiceUnavailable
	case errors.Is(err, core.ErrTooLarge):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":    "ok",
		"places":    len(s.data.Places),
		"inflight":  s.gate.InFlight(),
		"queued":    s.gate.Queued(),
		"capacity":  s.gate.Capacity(),
		"max_K":     s.cfg.MaxK,
		"timeout_s": s.cfg.QueryTimeout.Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	gs := s.gate.Stats()
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"dataset":    s.data.Config.Name,
		"places":     len(s.data.Places),
		"vocabulary": s.data.Dict.Len(),
		"extent":     s.data.Config.Extent,
		"gate": map[string]interface{}{
			"admitted":       gs.Admitted,
			"shed":           gs.Shed,
			"queue_timeouts": gs.QueueTimeouts,
			"cancelled":      gs.Cancelled,
			"inflight":       gs.InFlight,
			"queued":         gs.Queued,
			"capacity":       gs.Capacity,
			"queue_capacity": gs.QueueCapacity,
		},
		"panics_recovered": s.rec.Panics(),
	})
}

// searchResponse is the /search payload.
type searchResponse struct {
	RequestID string `json:"request_id,omitempty"`
	Query     struct {
		X        float64  `json:"x"`
		Y        float64  `json:"y"`
		Keywords []string `json:"keywords,omitempty"`
		K        int      `json:"K"`
		SmallK   int      `json:"k"`
		Lambda   float64  `json:"lambda"`
		Gamma    float64  `json:"gamma"`
		Algo     string   `json:"algo"`
	} `json:"query"`
	HPF         float64        `json:"hpf"`
	Breakdown   map[string]any `json:"breakdown"`
	Diagnostics map[string]any `json:"diagnostics"`
	Results     []searchResult `json:"results"`
}

type searchResult struct {
	Rank    int      `json:"rank"`
	ID      string   `json:"id"`
	X       float64  `json:"x"`
	Y       float64  `json:"y"`
	Rel     float64  `json:"rel"`
	Context []string `json:"context"`
}

// searchParams is the validated /search parameter set.
type searchParams struct {
	x, y          float64
	bigK, k       int
	lambda, gamma float64
	algo          core.Algorithm
	spatial       core.SpatialMethod
	spatialName   string
	keywords      []textctx.ItemID
}

// parseSearchParams validates every /search parameter, returning a
// descriptive error for anything malformed: non-finite coordinates
// (strconv.ParseFloat happily accepts NaN and Inf), non-positive k or K,
// k ≥ K, λ/γ outside [0, 1], and unknown algorithm or spatial method
// names all fail here with a 400 before any scoring work starts.
func (s *Server) parseSearchParams(r *http.Request) (searchParams, error) {
	q := r.URL.Query()
	getF := func(name string, def float64) (float64, error) {
		v := q.Get(name)
		if v == "" {
			return def, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("parameter %q: %v", name, err)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("parameter %q = %v must be finite", name, f)
		}
		return f, nil
	}
	getI := func(name string, def int) (int, error) {
		v := q.Get(name)
		if v == "" {
			return def, nil
		}
		i, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("parameter %q: %v", name, err)
		}
		return i, nil
	}

	var p searchParams
	var err error
	if p.x, err = getF("x", s.data.Config.Extent/2); err != nil {
		return p, err
	}
	if p.y, err = getF("y", s.data.Config.Extent/2); err != nil {
		return p, err
	}
	if p.bigK, err = getI("K", 100); err != nil {
		return p, err
	}
	if p.k, err = getI("k", 10); err != nil {
		return p, err
	}
	if p.lambda, err = getF("lambda", 0.5); err != nil {
		return p, err
	}
	if p.gamma, err = getF("gamma", 0.5); err != nil {
		return p, err
	}
	if p.bigK <= 0 {
		return p, fmt.Errorf("K = %d must be positive", p.bigK)
	}
	if p.k <= 0 {
		return p, fmt.Errorf("k = %d must be positive", p.k)
	}
	if p.k >= p.bigK {
		return p, fmt.Errorf("k = %d must be smaller than K = %d", p.k, p.bigK)
	}
	if p.lambda < 0 || p.lambda > 1 {
		return p, fmt.Errorf("lambda = %v outside [0, 1]", p.lambda)
	}
	if p.gamma < 0 || p.gamma > 1 {
		return p, fmt.Errorf("gamma = %v outside [0, 1]", p.gamma)
	}

	algo := q.Get("algo")
	if algo == "" {
		algo = "abp"
	}
	p.algo = core.Algorithm(algo)
	if !core.Registered(p.algo) {
		return p, fmt.Errorf("unknown algorithm %q (have %v)", algo, core.Algorithms())
	}

	p.spatialName = q.Get("spatial")
	if p.spatialName == "" {
		p.spatialName = "squared"
	}
	switch p.spatialName {
	case "squared":
		p.spatial = core.SpatialSquaredGrid
	case "radial":
		p.spatial = core.SpatialRadialGrid
	case "exact":
		p.spatial = core.SpatialExact
	default:
		return p, fmt.Errorf("unknown spatial method %q (have exact, squared, radial)", p.spatialName)
	}

	for _, kw := range strings.Split(q.Get("keywords"), ",") {
		kw = strings.TrimSpace(kw)
		if kw == "" {
			continue
		}
		if id, ok := s.data.Dict.Lookup(kw); ok {
			p.keywords = append(p.keywords, id)
		}
	}
	return p, nil
}

// stageDiag renders a trace into the diagnostics map: per-stage
// milliseconds plus the elapsed wall time so far, so every response
// shows where its budget went (and degradation decisions carry their
// evidence).
func stageDiag(tr *telemetry.Trace) map[string]any {
	stages := map[string]any{}
	for stage, d := range tr.Stages() {
		stages[stage] = round3(d.Seconds() * 1e3)
	}
	return stages
}

func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	// One trace per request; the pipeline stages (core, textctx, grid)
	// find it through the context and record their spans on it.
	tr := telemetry.NewTrace()
	r = r.WithContext(telemetry.WithTrace(r.Context(), tr))
	defer func() {
		for _, sp := range tr.Spans() {
			s.tel.stageSeconds.With(sp.Stage).Observe(sp.Dur.Seconds())
		}
	}()

	endParse := tr.StartSpan(telemetry.StageParse)
	p, err := s.parseSearchParams(r)
	endParse()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad parameter: %v", err)
		return
	}

	// Graceful degradation, part 1: K is the unit of quadratic work, so
	// clamp it to the server's ceiling and report the clamp.
	degraded := map[string]any{}
	if p.bigK > s.cfg.MaxK {
		degraded["K_clamped_from"] = p.bigK
		p.bigK = s.cfg.MaxK
		s.tel.degraded.With("k_clamp").Inc()
		if p.k >= p.bigK {
			s.writeError(w, http.StatusBadRequest,
				"bad parameter: k = %d must be smaller than the server's K ceiling %d", p.k, s.cfg.MaxK)
			return
		}
	}

	// The deadline budget covers admission wait plus compute, and is
	// bound to the client connection: a hang-up cancels r.Context() and
	// with it every checkpointed loop downstream.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()

	waitStart := time.Now()
	endWait := tr.StartSpan(telemetry.StageAdmission)
	release, err := s.gate.Acquire(ctx)
	endWait()
	s.tel.queueWait.Observe(time.Since(waitStart).Seconds())
	if err != nil {
		status := statusFor(err)
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
		}
		s.writeError(w, status, "admission: %v", err)
		return
	}
	defer release()

	// Graceful degradation, part 2: if queueing consumed most of the
	// budget, downshift the exact spatial method to the squared grid
	// (Section 7.1.1) rather than miss the deadline. The remaining budget
	// is recorded as the decision's evidence.
	if p.spatial == core.SpatialExact {
		if remaining, ok := resilience.Remaining(ctx); ok && remaining < s.cfg.DegradeBudget {
			p.spatial = core.SpatialSquaredGrid
			degraded["spatial"] = "exact→squared-grid (low budget)"
			degraded["remaining_budget_ms"] = round3(remaining.Seconds() * 1e3)
			s.tel.degraded.With("spatial_downshift").Inc()
		}
	}

	loc := geo.Pt(p.x, p.y)
	endRetrieve := tr.StartSpan(telemetry.StageRetrieve)
	places, err := s.data.Retrieve(dataset.Query{Loc: loc, Keywords: textctx.NewSet(p.keywords...)}, p.bigK)
	endRetrieve()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "retrieve: %v", err)
		return
	}
	if len(places) <= p.k {
		s.writeError(w, http.StatusBadRequest, "retrieved %d places; need more than k=%d", len(places), p.k)
		return
	}
	opt := core.ScoreOptions{Gamma: p.gamma, Spatial: p.spatial}
	if p.spatial == core.SpatialSquaredGrid {
		opt.SquaredTable = s.sqTbl
	}
	// Step 1 records the step1_pcs / step1_pss spans on ctx's trace;
	// Step 2 records step2_select.
	ss, err := core.ComputeScoresCtx(ctx, loc, places, opt)
	if err != nil {
		s.writeError(w, statusFor(err), "score: %v", err)
		return
	}
	params := core.Params{K: p.k, Lambda: p.lambda, Gamma: p.gamma}
	sel, err := core.SelectCtx(ctx, p.algo, ss, params)
	if err != nil {
		s.writeError(w, statusFor(err), "select: %v", err)
		return
	}

	b := ss.Evaluate(sel.Indices, p.lambda)
	var resp searchResponse
	resp.RequestID = w.Header().Get(telemetry.RequestIDHeader)
	resp.Query.X, resp.Query.Y = p.x, p.y
	resp.Query.K, resp.Query.SmallK = p.bigK, p.k
	resp.Query.Lambda, resp.Query.Gamma = p.lambda, p.gamma
	resp.Query.Algo = string(p.algo)
	for _, kw := range p.keywords {
		resp.Query.Keywords = append(resp.Query.Keywords, s.data.Dict.Word(kw))
	}
	resp.HPF = b.Total
	resp.Breakdown = map[string]any{"rel": b.Rel, "pC": b.PC, "pS": b.PS}
	diag := metrics.Evaluate(ss, sel.Indices)
	resp.Diagnostics = map[string]any{
		"inference_match":      diag.InferenceMatch,
		"dominance":            diag.Dominance,
		"rare_share":           diag.RareShare,
		"type_coverage":        diag.TypeCoverage,
		"directional_coverage": diag.DirectionalCoverage,
		"diversity":            diag.Diversity,
		"mean_relevance":       diag.MeanRelevance,
		"spatial_method":       p.spatial.String(),
		"stage_ms":             stageDiag(tr),
		"elapsed_ms":           round3(tr.Elapsed().Seconds() * 1e3),
	}
	if len(degraded) > 0 {
		resp.Diagnostics["degraded"] = degraded
	}
	for rank, idx := range sel.Indices {
		p := ss.Places[idx]
		ctxWords := p.Context.Words(s.data.Dict)
		if len(ctxWords) > 6 {
			ctxWords = ctxWords[:6]
		}
		resp.Results = append(resp.Results, searchResult{
			Rank: rank + 1, ID: p.ID, X: p.Loc.X, Y: p.Loc.Y, Rel: p.Rel, Context: ctxWords,
		})
	}
	endEncode := tr.StartSpan(telemetry.StageEncode)
	s.writeJSON(w, http.StatusOK, resp)
	endEncode()
}
