package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/textctx"
)

// Server serves proportional search over one corpus. It is safe for
// concurrent use: the dataset and precomputed grid tables are read-only
// after construction, and every request builds its own score set.
type Server struct {
	mux   *http.ServeMux
	data  *dataset.Dataset
	sqTbl *grid.SquaredTable
}

// NewServer builds the handler tree over d.
func NewServer(d *dataset.Dataset) *Server {
	s := &Server{
		mux:   http.NewServeMux(),
		data:  d,
		sqTbl: grid.NewSquaredTable(grid.SideForCells(1024)),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /search", s.handleSearch)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok",
		"places": len(s.data.Places),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"dataset":    s.data.Config.Name,
		"places":     len(s.data.Places),
		"vocabulary": s.data.Dict.Len(),
		"extent":     s.data.Config.Extent,
	})
}

// searchResponse is the /search payload.
type searchResponse struct {
	Query struct {
		X        float64  `json:"x"`
		Y        float64  `json:"y"`
		Keywords []string `json:"keywords,omitempty"`
		K        int      `json:"K"`
		SmallK   int      `json:"k"`
		Lambda   float64  `json:"lambda"`
		Gamma    float64  `json:"gamma"`
		Algo     string   `json:"algo"`
	} `json:"query"`
	HPF         float64        `json:"hpf"`
	Breakdown   map[string]any `json:"breakdown"`
	Diagnostics map[string]any `json:"diagnostics"`
	Results     []searchResult `json:"results"`
}

type searchResult struct {
	Rank    int      `json:"rank"`
	ID      string   `json:"id"`
	X       float64  `json:"x"`
	Y       float64  `json:"y"`
	Rel     float64  `json:"rel"`
	Context []string `json:"context"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	getF := func(name string, def float64) (float64, error) {
		v := q.Get(name)
		if v == "" {
			return def, nil
		}
		return strconv.ParseFloat(v, 64)
	}
	getI := func(name string, def int) (int, error) {
		v := q.Get(name)
		if v == "" {
			return def, nil
		}
		return strconv.Atoi(v)
	}

	x, err1 := getF("x", s.data.Config.Extent/2)
	y, err2 := getF("y", s.data.Config.Extent/2)
	bigK, err3 := getI("K", 100)
	k, err4 := getI("k", 10)
	lambda, err5 := getF("lambda", 0.5)
	gamma, err6 := getF("gamma", 0.5)
	for _, err := range []error{err1, err2, err3, err4, err5, err6} {
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad parameter: %v", err)
			return
		}
	}
	algo := q.Get("algo")
	if algo == "" {
		algo = "abp"
	}

	var kwIDs []textctx.ItemID
	for _, kw := range strings.Split(q.Get("keywords"), ",") {
		kw = strings.TrimSpace(kw)
		if kw == "" {
			continue
		}
		if id, ok := s.data.Dict.Lookup(kw); ok {
			kwIDs = append(kwIDs, id)
		}
	}

	loc := geo.Pt(x, y)
	places, err := s.data.Retrieve(dataset.Query{Loc: loc, Keywords: textctx.NewSet(kwIDs...)}, bigK)
	if err != nil {
		writeError(w, http.StatusBadRequest, "retrieve: %v", err)
		return
	}
	if len(places) <= k {
		writeError(w, http.StatusBadRequest, "retrieved %d places; need more than k=%d", len(places), k)
		return
	}
	ss, err := core.ComputeScores(loc, places, core.ScoreOptions{
		Gamma:        gamma,
		Spatial:      core.SpatialSquaredGrid,
		SquaredTable: s.sqTbl,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "score: %v", err)
		return
	}
	params := core.Params{K: k, Lambda: lambda, Gamma: gamma}
	sel, err := core.Select(core.Algorithm(algo), ss, params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "select: %v", err)
		return
	}

	b := ss.Evaluate(sel.Indices, lambda)
	var resp searchResponse
	resp.Query.X, resp.Query.Y = x, y
	resp.Query.K, resp.Query.SmallK = bigK, k
	resp.Query.Lambda, resp.Query.Gamma = lambda, gamma
	resp.Query.Algo = algo
	for _, kw := range kwIDs {
		resp.Query.Keywords = append(resp.Query.Keywords, s.data.Dict.Word(kw))
	}
	resp.HPF = b.Total
	resp.Breakdown = map[string]any{"rel": b.Rel, "pC": b.PC, "pS": b.PS}
	diag := metrics.Evaluate(ss, sel.Indices)
	resp.Diagnostics = map[string]any{
		"inference_match":      diag.InferenceMatch,
		"dominance":            diag.Dominance,
		"rare_share":           diag.RareShare,
		"type_coverage":        diag.TypeCoverage,
		"directional_coverage": diag.DirectionalCoverage,
		"diversity":            diag.Diversity,
		"mean_relevance":       diag.MeanRelevance,
	}
	for rank, idx := range sel.Indices {
		p := ss.Places[idx]
		ctx := p.Context.Words(s.data.Dict)
		if len(ctx) > 6 {
			ctx = ctx[:6]
		}
		resp.Results = append(resp.Results, searchResult{
			Rank: rank + 1, ID: p.ID, X: p.Loc.X, Y: p.Loc.Y, Rel: p.Rel, Context: ctx,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
