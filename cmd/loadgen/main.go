// Command loadgen drives sustained open-loop load against a running
// propserve instance and reports latency quantiles, throughput and shed
// rate.
//
//	propserve -data db.gob -addr :8080 &
//	loadgen -addr http://127.0.0.1:8080 -data db.gob -rps 200 -duration 30s -mix hit-heavy
//
// Arrivals follow a Poisson process at -rps regardless of response
// latency (open loop), so overload shows up as shed 503s and a growing
// tail instead of a silently slowed client. -mix selects the traffic
// shape: hit-heavy (Zipf-skewed repeats over a small query pool),
// miss-heavy (every query unique, all compute), or mutation-interleaved
// (hit-heavy plus a fraction of POST /v1/corpus batches; the server
// needs -enable-mutation). -warmup runs unrecorded load first so cache
// fill does not pollute the measurement. -corpus aims the whole run at a
// named corpus through the corpus-scoped /v1/corpora/<name>/ routes;
// running two instances with different -corpus values load-tests tenant
// isolation.
//
// The report carries two latency series: client-observed wall time and
// the server-side duration from each response's Server-Timing header —
// the exact values the server recorded into its /v1/slo tracker. -out
// writes the report as JSON for benchdiff-style comparisons.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/loadgen"
)

func main() {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the propserve instance")
	corpus := fs.String("corpus", "", "target a named corpus via /v1/corpora/<name>/... (empty: the default corpus via the un-scoped /v1 routes)")
	data := fs.String("data", "", "dataset file the server was started with (empty: the same generated demo corpus)")
	rps := fs.Float64("rps", 50, "target arrival rate (open-loop Poisson)")
	duration := fs.Duration("duration", 10*time.Second, "measured phase length")
	warmup := fs.Duration("warmup", 2*time.Second, "unrecorded warmup phase length")
	mix := fs.String("mix", loadgen.MixHitHeavy, "traffic mix: hit-heavy, miss-heavy or mutation-interleaved")
	seed := fs.Int64("seed", 1, "workload RNG seed")
	poolSize := fs.Int("pool", 32, "distinct-query pool size for the Zipf-skewed mixes")
	zipfS := fs.Float64("zipf-s", 1.3, "Zipf skew parameter (>1; larger = more repetition)")
	bigK := fs.Int("K", 100, "retrieval size sent with every query")
	smallK := fs.Int("k", 10, "result size sent with every query")
	mutFrac := fs.Float64("mutation-fraction", 0.02, "share of arrivals that mutate the corpus under -mix mutation-interleaved")
	out := fs.String("out", "", "write the JSON report to this file (empty: stdout only)")
	fs.Parse(os.Args[1:])

	d, err := loadDataset(*data)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL:          *addr,
		Corpus:           *corpus,
		RPS:              *rps,
		Duration:         *duration,
		Warmup:           *warmup,
		Mix:              *mix,
		Data:             d,
		Seed:             *seed,
		PoolSize:         *poolSize,
		ZipfS:            *zipfS,
		K:                *bigK,
		SmallK:           *smallK,
		MutationFraction: *mutFrac,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}

	payload := map[string]any{
		"report": report,
		"go":     runtime.Version(),
		"cpus":   runtime.NumCPU(),
		"time":   time.Now().UTC().Format(time.RFC3339),
	}
	if server := serverIdentity(*addr); server != nil {
		payload["server"] = server
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		fatal(err)
	}
	if *out != "" {
		b, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if report.TransportErrors > 0 && report.OK == 0 {
		fatal(fmt.Errorf("no request succeeded (%d transport errors): is %s serving?", report.TransportErrors, *addr))
	}
}

// loadDataset mirrors propserve's corpus bootstrap: an explicit datagen
// file when given, otherwise the same deterministic demo corpus the
// server generates, so client queries hit the server's vocabulary.
func loadDataset(path string) (*dataset.Dataset, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.Load(f)
	}
	cfg := dataset.DBpediaLike(7)
	cfg.Places = 1500
	return dataset.Generate(cfg)
}

// serverIdentity stamps the report with the server-under-test's
// identity from /v1/stats (uptime, build revision, go version, start
// epoch); nil when the endpoint is unreachable — identity is
// best-effort, not a reason to discard a finished run.
func serverIdentity(base string) map[string]any {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(strings.TrimRight(base, "/") + "/v1/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var stats struct {
		Server map[string]any `json:"server"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&stats) != nil {
		return nil
	}
	return stats.Server
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
