// Command benchdiff compares two BENCH_*.json reports (written by `make
// bench-serve`, `make bench-suite` or `make bench-load`) and flags
// performance regressions.
//
//	benchdiff [-threshold 0.15] [-tail-threshold 0.25] [-shed-threshold 0.02] old.json new.json
//
// Three field families are gated, each keyed by suffix:
//
//   - *_ns_op: per-op timings; a relative slowdown beyond -threshold
//     (default 15%) is a regression.
//   - *_p99_ms: tail latencies from the sustained-load harness; gated
//     like timings but under the looser -tail-threshold (default 25%),
//     because p99 over a few hundred load samples is noisier than a
//     ns/op mean over thousands of iterations.
//   - *_shed_rate: the fraction of load-test requests the admission gate
//     rejected; gated on the ABSOLUTE increase (-shed-threshold, default
//     0.02) — a relative gate is useless against a 0.000 baseline, and
//     any shedding on a previously clean mix is the signal that matters.
//
// A field whose new value exceeds its gate is a regression. benchdiff
// exits 1 when any regression is found, 0 otherwise, so CI can run it as
// a non-blocking trend check against committed baselines. Fields present
// in only one file are reported but never fail the comparison — reports
// gain fields as the suite grows. A missing OLD file is treated the same
// way at file granularity: every field reports "new" and the run exits 0,
// so a freshly added suite lands before its baseline is committed. A
// missing NEW file is still an error. A gated field holding a non-numeric
// JSON value is a corrupted report, not a missing field: it is printed as
// a "bad" line naming the offending file and fails the run with exit 2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// gate describes one comparable field family: which suffix selects it,
// how its values print, and when a change counts as a regression.
type gate struct {
	suffix    string
	unit      string
	format    string  // value format, e.g. "%14.0f"
	threshold float64 // relative slowdown, or absolute delta when absolute
	absolute  bool
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.15, "relative slowdown above which a *_ns_op field is a regression")
	tailThreshold := fs.Float64("tail-threshold", 0.25, "relative slowdown above which a *_p99_ms field is a regression")
	shedThreshold := fs.Float64("shed-threshold", 0.02, "absolute increase above which a *_shed_rate field is a regression")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-threshold 0.15] [-tail-threshold 0.25] [-shed-threshold 0.02] old.json new.json")
		return 2
	}
	gates := []gate{
		{suffix: "_ns_op", unit: "ns/op", format: "%14.0f", threshold: *threshold},
		{suffix: "_p99_ms", unit: "ms", format: "%14.3f", threshold: *tailThreshold},
		{suffix: "_shed_rate", unit: "shed", format: "%14.3f", threshold: *shedThreshold, absolute: true},
	}
	oldRep, err := load(fs.Arg(0))
	if os.IsNotExist(err) {
		// A brand-new benchmark suite has no committed baseline yet; its
		// first run must land cleanly. Every field in the new report is
		// reported as "new" and the comparison passes.
		fmt.Fprintf(stdout, "benchdiff: no baseline %s; treating every field as new\n", fs.Arg(0))
		oldRep, err = map[string]any{}, nil
	}
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newRep, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	keys := gatedKeys(gates, oldRep, newRep)
	if len(keys) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no gated fields (*_ns_op, *_p99_ms, *_shed_rate) to compare")
		return 2
	}
	regressions, malformed := 0, 0
	for _, k := range keys {
		g := gateFor(gates, k)
		ov, oldHas, oldBad := number(oldRep, k)
		nv, newHas, newBad := number(newRep, k)
		val := func(v float64) string { return fmt.Sprintf(g.format, v) }
		switch {
		case oldBad || newBad:
			// A present-but-non-numeric value is corruption, not absence:
			// reporting it as "new"/"gone" would hide a broken baseline.
			for _, f := range badFiles(fs.Arg(0), oldBad, fs.Arg(1), newBad) {
				fmt.Fprintf(stdout, "  bad   %-24s non-numeric value in %s\n", k, f)
			}
			malformed++
		case !oldHas:
			fmt.Fprintf(stdout, "  new   %-24s %s %s (no baseline)\n", k, val(nv), g.unit)
		case !newHas:
			fmt.Fprintf(stdout, "  gone  %-24s %s %s (not in new report)\n", k, val(ov), g.unit)
		case !g.absolute && ov <= 0:
			fmt.Fprintf(stdout, "  skip  %-24s baseline %s is not a usable value\n", k, strings.TrimSpace(val(ov)))
		case g.absolute:
			// Absolute gate: the delta itself is the signal (shed rates
			// start at 0.000, where ratios are meaningless).
			delta := nv - ov
			mark := "  ok   "
			if delta > g.threshold {
				mark = "  SLOW "
				regressions++
			} else if delta < -g.threshold {
				mark = "  fast "
			}
			fmt.Fprintf(stdout, "%s%-24s %s -> %s %s  (%+.3f)\n", mark, k, val(ov), strings.TrimSpace(val(nv)), g.unit, delta)
		default:
			delta := nv/ov - 1
			mark := "  ok   "
			if delta > g.threshold {
				mark = "  SLOW "
				regressions++
			} else if delta < -g.threshold {
				mark = "  fast "
			}
			fmt.Fprintf(stdout, "%s%-24s %s -> %s %s  (%+.1f%%)\n", mark, k, val(ov), strings.TrimSpace(val(nv)), g.unit, delta*100)
		}
	}
	if malformed > 0 {
		fmt.Fprintf(stdout, "benchdiff: %d malformed field(s); reports are not comparable\n", malformed)
		return 2
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "benchdiff: %d field(s) regressed\n", regressions)
		return 1
	}
	fmt.Fprintln(stdout, "benchdiff: no regression beyond thresholds")
	return 0
}

// badFiles names the report file(s) whose field was non-numeric.
func badFiles(oldPath string, oldBad bool, newPath string, newBad bool) []string {
	var out []string
	if oldBad {
		out = append(out, oldPath)
	}
	if newBad {
		out = append(out, newPath)
	}
	return out
}

func load(path string) (map[string]any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// gatedKeys collects the union of field names matching any gate suffix,
// sorted. Values of any JSON type are included: a non-numeric one must
// surface as a "bad" line, not vanish from the comparison.
func gatedKeys(gates []gate, reports ...map[string]any) []string {
	seen := map[string]bool{}
	for _, r := range reports {
		for k := range r {
			if gateFor(gates, k) != nil {
				seen[k] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// gateFor returns the gate whose suffix matches k, or nil. A key that is
// nothing but the suffix itself (no benchmark name) matches no gate.
func gateFor(gates []gate, k string) *gate {
	for i := range gates {
		if s := gates[i].suffix; len(k) > len(s) && strings.HasSuffix(k, s) {
			return &gates[i]
		}
	}
	return nil
}

// number reads field k: has reports a usable numeric value, bad a value
// that is present but not a JSON number (a corrupted report).
func number(m map[string]any, k string) (v float64, has, bad bool) {
	raw, present := m[k]
	if !present {
		return 0, false, false
	}
	f, ok := raw.(float64)
	if !ok {
		return 0, false, true
	}
	return f, true, false
}
