// Command benchdiff compares two BENCH_*.json reports (written by `make
// bench-serve` or `make bench-suite`) and flags timing regressions.
//
//	benchdiff [-threshold 0.15] old.json new.json
//
// Every top-level numeric field whose name ends in "_ns_op" and appears
// in both files is compared; a field whose new value exceeds the old by
// more than the threshold (default 15%) is a regression. benchdiff exits
// 1 when any regression is found, 0 otherwise, so CI can run it as a
// non-blocking trend check against committed baselines. Fields present
// in only one file are reported but never fail the comparison — reports
// gain fields as the suite grows. A missing OLD file is treated the same
// way at file granularity: every field reports "new" and the run exits 0,
// so a freshly added suite lands before its baseline is committed. A
// missing NEW file is still an error. A *_ns_op field holding a non-numeric
// JSON value is a corrupted report, not a missing field: it is printed as
// a "bad" line naming the offending file and fails the run with exit 2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.15, "relative slowdown above which a *_ns_op field is a regression")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-threshold 0.15] old.json new.json")
		return 2
	}
	oldRep, err := load(fs.Arg(0))
	if os.IsNotExist(err) {
		// A brand-new benchmark suite has no committed baseline yet; its
		// first run must land cleanly. Every field in the new report is
		// reported as "new" and the comparison passes.
		fmt.Fprintf(stdout, "benchdiff: no baseline %s; treating every field as new\n", fs.Arg(0))
		oldRep, err = map[string]any{}, nil
	}
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newRep, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	keys := timingKeys(oldRep, newRep)
	if len(keys) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no *_ns_op fields to compare")
		return 2
	}
	regressions, malformed := 0, 0
	for _, k := range keys {
		ov, oldHas, oldBad := number(oldRep, k)
		nv, newHas, newBad := number(newRep, k)
		switch {
		case oldBad || newBad:
			// A present-but-non-numeric timing is corruption, not absence:
			// reporting it as "new"/"gone" would hide a broken baseline.
			for _, f := range badFiles(fs.Arg(0), oldBad, fs.Arg(1), newBad) {
				fmt.Fprintf(stdout, "  bad   %-24s non-numeric value in %s\n", k, f)
			}
			malformed++
		case !oldHas:
			fmt.Fprintf(stdout, "  new   %-24s %14.0f ns/op (no baseline)\n", k, nv)
		case !newHas:
			fmt.Fprintf(stdout, "  gone  %-24s %14.0f ns/op (not in new report)\n", k, ov)
		case ov <= 0:
			fmt.Fprintf(stdout, "  skip  %-24s baseline %.0f is not a usable timing\n", k, ov)
		default:
			delta := nv/ov - 1
			mark := "  ok   "
			if delta > *threshold {
				mark = "  SLOW "
				regressions++
			} else if delta < -*threshold {
				mark = "  fast "
			}
			fmt.Fprintf(stdout, "%s%-24s %14.0f -> %12.0f ns/op  (%+.1f%%)\n", mark, k, ov, nv, delta*100)
		}
	}
	if malformed > 0 {
		fmt.Fprintf(stdout, "benchdiff: %d malformed *_ns_op field(s); reports are not comparable\n", malformed)
		return 2
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "benchdiff: %d field(s) regressed beyond %.0f%%\n", regressions, *threshold*100)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: no regression beyond %.0f%%\n", *threshold*100)
	return 0
}

// badFiles names the report file(s) whose field was non-numeric.
func badFiles(oldPath string, oldBad bool, newPath string, newBad bool) []string {
	var out []string
	if oldBad {
		out = append(out, oldPath)
	}
	if newBad {
		out = append(out, newPath)
	}
	return out
}

func load(path string) (map[string]any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// timingKeys collects the union of *_ns_op field names, sorted. Values of
// any JSON type are included: a non-numeric one must surface as a "bad"
// line, not vanish from the comparison.
func timingKeys(reports ...map[string]any) []string {
	seen := map[string]bool{}
	for _, r := range reports {
		for k := range r {
			if hasNsOpSuffix(k) {
				seen[k] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func hasNsOpSuffix(k string) bool {
	const suf = "_ns_op"
	return len(k) > len(suf) && k[len(k)-len(suf):] == suf
}

// number reads field k: has reports a usable numeric value, bad a value
// that is present but not a JSON number (a corrupted report).
func number(m map[string]any, k string) (v float64, has, bad bool) {
	raw, present := m[k]
	if !present {
		return 0, false, false
	}
	f, ok := raw.(float64)
	if !ok {
		return 0, false, true
	}
	return f, true, false
}
