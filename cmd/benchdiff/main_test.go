package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, fields map[string]any) string {
	t.Helper()
	b, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func diff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestRegressionFails: a synthetic >15% slowdown exits non-zero and names
// the regressed field.
func TestRegressionFails(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]any{
		"benchmark": "x", "miss_ns_op": 1000.0, "hit_ns_op": 100.0,
	})
	newP := writeReport(t, dir, "new.json", map[string]any{
		"benchmark": "x", "miss_ns_op": 1200.0, "hit_ns_op": 100.0,
	})
	code, out, _ := diff(t, oldP, newP)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for a 20%% regression\n%s", code, out)
	}
	if !strings.Contains(out, "SLOW") || !strings.Contains(out, "miss_ns_op") {
		t.Errorf("output does not flag miss_ns_op as SLOW:\n%s", out)
	}
	if strings.Contains(out, "SLOW hit_ns_op") {
		t.Errorf("unchanged hit_ns_op flagged:\n%s", out)
	}
}

// TestWithinThresholdPasses: a 10% slowdown is inside the default 15%
// threshold and passes.
func TestWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]any{"miss_ns_op": 1000.0})
	newP := writeReport(t, dir, "new.json", map[string]any{"miss_ns_op": 1100.0})
	if code, out, _ := diff(t, oldP, newP); code != 0 {
		t.Fatalf("exit = %d, want 0 for a 10%% slowdown\n%s", code, out)
	}
}

// TestCustomThreshold: the same 10% slowdown fails under -threshold 0.05.
func TestCustomThreshold(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]any{"miss_ns_op": 1000.0})
	newP := writeReport(t, dir, "new.json", map[string]any{"miss_ns_op": 1100.0})
	if code, out, _ := diff(t, "-threshold", "0.05", oldP, newP); code != 1 {
		t.Fatalf("exit = %d, want 1 at threshold 0.05\n%s", code, out)
	}
}

// TestImprovementPasses: speedups never fail, and are marked.
func TestImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]any{"miss_ns_op": 1000.0})
	newP := writeReport(t, dir, "new.json", map[string]any{"miss_ns_op": 500.0})
	code, out, _ := diff(t, oldP, newP)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 for an improvement\n%s", code, out)
	}
	if !strings.Contains(out, "fast") {
		t.Errorf("improvement not marked fast:\n%s", out)
	}
}

// TestNewFieldsTolerated: a field present only in the new report (the
// suite grew) is reported but never a failure.
func TestNewFieldsTolerated(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]any{"miss_ns_op": 1000.0})
	newP := writeReport(t, dir, "new.json", map[string]any{"miss_ns_op": 1000.0, "extra_ns_op": 123.0})
	code, out, _ := diff(t, oldP, newP)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 when a field is new\n%s", code, out)
	}
	if !strings.Contains(out, "extra_ns_op") || !strings.Contains(out, "no baseline") {
		t.Errorf("new field not reported:\n%s", out)
	}
}

// TestBadUsage: missing args and unreadable files are usage errors (2),
// distinct from regression failures (1).
func TestBadUsage(t *testing.T) {
	if code, _, _ := diff(t); code != 2 {
		t.Errorf("no args: exit = %d, want 2", code)
	}
	if code, _, stderr := diff(t, "/does/not/exist.json", "/neither.json"); code != 2 || stderr == "" {
		t.Errorf("missing files: exit = %d, want 2 with a message", code)
	}
	dir := t.TempDir()
	empty := writeReport(t, dir, "empty.json", map[string]any{"benchmark": "x"})
	if code, _, _ := diff(t, empty, empty); code != 2 {
		t.Errorf("no timing fields: exit = %d, want 2", code)
	}
}

// TestMalformedFieldFailsLoudly: a *_ns_op field holding a non-numeric
// JSON value is a corrupted report — the run prints a "bad" line naming
// the offending file and exits 2 instead of silently reporting the field
// as new/gone.
func TestMalformedFieldFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]any{
		"miss_ns_op": 1000.0, "hit_ns_op": 100.0,
	})
	newP := writeReport(t, dir, "new.json", map[string]any{
		"miss_ns_op": "fast", "hit_ns_op": 100.0,
	})
	code, out, _ := diff(t, oldP, newP)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 for a non-numeric timing\n%s", code, out)
	}
	if !strings.Contains(out, "bad") || !strings.Contains(out, "miss_ns_op") || !strings.Contains(out, newP) {
		t.Errorf("output does not name the bad field and file:\n%s", out)
	}
	if !strings.Contains(out, "not comparable") {
		t.Errorf("missing summary line:\n%s", out)
	}

	// Corruption in both files names both; a healthy field still prints.
	oldBad := writeReport(t, dir, "old-bad.json", map[string]any{"miss_ns_op": nil, "hit_ns_op": 100.0})
	code, out, _ = diff(t, oldBad, newP)
	if code != 2 {
		t.Fatalf("exit = %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, oldBad) || !strings.Contains(out, newP) {
		t.Errorf("both corrupted files should be named:\n%s", out)
	}
	if !strings.Contains(out, "ok") {
		t.Errorf("healthy hit_ns_op row missing:\n%s", out)
	}

	// Malformed takes precedence over a concurrent regression: exit 2, not 1.
	slow := writeReport(t, dir, "slow.json", map[string]any{"miss_ns_op": "fast", "hit_ns_op": 500.0})
	if code, out, _ := diff(t, oldP, slow); code != 2 {
		t.Errorf("exit = %d, want 2 when a report is malformed even with regressions\n%s", code, out)
	}
}

// TestMissingBaselineFileTolerated: a brand-new suite has no committed
// baseline yet; its first benchdiff run reports every field as "new" and
// exits 0 so the report can land. A missing NEW file stays an error.
func TestMissingBaselineFileTolerated(t *testing.T) {
	dir := t.TempDir()
	newP := writeReport(t, dir, "new.json", map[string]any{"mutate_ns_op": 1000.0, "fsync_ns_op": 50.0})
	code, out, _ := diff(t, filepath.Join(dir, "no-such-baseline.json"), newP)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 for a missing baseline file\n%s", code, out)
	}
	if !strings.Contains(out, "no baseline") {
		t.Errorf("missing baseline not announced:\n%s", out)
	}
	for _, field := range []string{"mutate_ns_op", "fsync_ns_op"} {
		if !strings.Contains(out, "new   "+field) {
			t.Errorf("field %s not reported as new:\n%s", field, out)
		}
	}

	if code, _, errOut := diff(t, newP, filepath.Join(dir, "no-such-new.json")); code != 2 {
		t.Errorf("exit = %d, want 2 for a missing NEW report (%s)", code, errOut)
	}
}

// TestTailLatencyGate: *_p99_ms fields from the load harness are gated
// relatively under -tail-threshold (default 25%): a 50% p99 regression
// fails, a 20% one passes, and the threshold is tunable.
func TestTailLatencyGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]any{
		"hit_heavy_p99_ms": 2.0, "miss_heavy_p99_ms": 6.0,
	})
	badP := writeReport(t, dir, "bad.json", map[string]any{
		"hit_heavy_p99_ms": 3.0, "miss_heavy_p99_ms": 6.0,
	})
	code, out, _ := diff(t, oldP, badP)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for a 50%% p99 regression\n%s", code, out)
	}
	if !strings.Contains(out, "SLOW") || !strings.Contains(out, "hit_heavy_p99_ms") {
		t.Errorf("p99 regression not flagged:\n%s", out)
	}

	okP := writeReport(t, dir, "ok.json", map[string]any{
		"hit_heavy_p99_ms": 2.4, "miss_heavy_p99_ms": 6.0,
	})
	if code, out, _ := diff(t, oldP, okP); code != 0 {
		t.Fatalf("exit = %d, want 0 for a 20%% p99 wobble inside the default tail threshold\n%s", code, out)
	}
	if code, out, _ := diff(t, "-tail-threshold", "0.1", oldP, okP); code != 1 {
		t.Fatalf("exit = %d, want 1 for 20%% under -tail-threshold 0.1\n%s", code, out)
	}
}

// TestShedRateGate: *_shed_rate fields are gated on absolute increase —
// a jump from 0.000 to 0.05 fails even though the ratio is infinite, and
// a wobble under the default 0.02 passes.
func TestShedRateGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]any{
		"hit_heavy_shed_rate": 0.0, "hit_heavy_p99_ms": 2.0,
	})
	badP := writeReport(t, dir, "bad.json", map[string]any{
		"hit_heavy_shed_rate": 0.05, "hit_heavy_p99_ms": 2.0,
	})
	code, out, _ := diff(t, oldP, badP)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 when a clean mix starts shedding\n%s", code, out)
	}
	if !strings.Contains(out, "SLOW") || !strings.Contains(out, "hit_heavy_shed_rate") {
		t.Errorf("shed regression not flagged:\n%s", out)
	}

	okP := writeReport(t, dir, "ok.json", map[string]any{
		"hit_heavy_shed_rate": 0.01, "hit_heavy_p99_ms": 2.0,
	})
	if code, out, _ := diff(t, oldP, okP); code != 0 {
		t.Fatalf("exit = %d, want 0 for shed within the absolute threshold\n%s", code, out)
	}
	if code, out, _ := diff(t, "-shed-threshold", "0.005", oldP, okP); code != 1 {
		t.Fatalf("exit = %d, want 1 for +0.01 shed under -shed-threshold 0.005\n%s", code, out)
	}
}

// TestMixedFamiliesOneReport: ns/op, p99 and shed fields coexist in one
// comparison, each judged by its own gate.
func TestMixedFamiliesOneReport(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]any{
		"hit_ns_op": 1000.0, "miss_heavy_p99_ms": 5.0, "miss_heavy_shed_rate": 0.0,
	})
	newP := writeReport(t, dir, "new.json", map[string]any{
		// 10% ns/op and 20% p99 are inside their gates; the shed jump is not.
		"hit_ns_op": 1100.0, "miss_heavy_p99_ms": 6.0, "miss_heavy_shed_rate": 0.08,
	})
	code, out, _ := diff(t, oldP, newP)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (only the shed field regressed)\n%s", code, out)
	}
	if !strings.Contains(out, "SLOW miss_heavy_shed_rate") {
		t.Errorf("shed not the flagged field:\n%s", out)
	}
	if strings.Contains(out, "SLOW hit_ns_op") || strings.Contains(out, "SLOW miss_heavy_p99_ms") {
		t.Errorf("in-threshold fields flagged:\n%s", out)
	}
	if !strings.Contains(out, "1 field(s) regressed") {
		t.Errorf("summary should count exactly one regression:\n%s", out)
	}
}
