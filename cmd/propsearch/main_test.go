package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func demoFile(t *testing.T) string {
	t.Helper()
	cfg := dataset.DBpediaLike(3)
	cfg.Places = 500
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "demo.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllAlgorithms(t *testing.T) {
	path := demoFile(t)
	for _, algo := range []string{"abp", "iadu", "topk", "abp-div", "iadu-div"} {
		var out bytes.Buffer
		err := run([]string{"-data", path, "-K", "60", "-k", "5", "-algo", algo}, &out)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "HPF(R)") {
			t.Errorf("%s: missing HPF line:\n%s", algo, out.String())
		}
		if got := strings.Count(out.String(), "place:"); got < 5 {
			t.Errorf("%s: expected ≥5 result rows, got %d", algo, got)
		}
	}
}

func TestRunWithLocationAndKeywords(t *testing.T) {
	path := demoFile(t)
	var out bytes.Buffer
	err := run([]string{"-data", path, "-K", "50", "-k", "5",
		"-loc", "50,50", "-keywords", "Type:0,never-seen-keyword"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "never-seen-keyword") {
		t.Error("unknown keyword not reported")
	}
}

func TestRunErrors(t *testing.T) {
	path := demoFile(t)
	cases := [][]string{
		{"-data", "/nonexistent/file.gob"},
		{"-data", path, "-loc", "garbage"},
		{"-data", path, "-loc", "1,2,3junk"},
		{"-data", path, "-algo", "magic"},
		{"-data", path, "-K", "5", "-k", "10"}, // k ≥ retrieved
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
