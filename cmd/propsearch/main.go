// Command propsearch answers spatial keyword queries with proportional
// selection: it retrieves the K most relevant places around a query
// location (IR-tree), computes the proportionality scores (msJh + squared
// grid) and selects k places with the chosen algorithm.
//
// Usage:
//
//	propsearch -data db.gob -loc 42.5,17.3 -keywords "Type:10,Collection:4" \
//	           -K 100 -k 10 -lambda 0.5 -gamma 0.5 -algo abp
//
// Without -data, a small demo dataset is generated on the fly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/textctx"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "propsearch:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("propsearch", flag.ContinueOnError)
	data := fs.String("data", "", "dataset file from datagen (empty: generate a demo corpus)")
	locStr := fs.String("loc", "", "query location as x,y (empty: centre of the world)")
	keywords := fs.String("keywords", "", "comma-separated query keywords")
	bigK := fs.Int("K", 100, "size of the retrieved set S")
	k := fs.Int("k", 10, "size of the selected set R")
	lambda := fs.Float64("lambda", 0.5, "relevance vs proportionality weight λ")
	gamma := fs.Float64("gamma", 0.5, "contextual vs spatial weight γ")
	algo := fs.String("algo", "abp", "selection algorithm (abp, iadu, topk, abp-div, iadu-div, ...)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, err := loadOrGenerate(*data)
	if err != nil {
		return err
	}

	loc := geo.Pt(d.Config.Extent/2, d.Config.Extent/2)
	if *locStr != "" {
		parts := strings.SplitN(*locStr, ",", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -loc %q (want x,y)", *locStr)
		}
		x, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		y, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad -loc %q", *locStr)
		}
		loc = geo.Pt(x, y)
	}

	var kwIDs []textctx.ItemID
	var unknown []string
	for _, w := range strings.Split(*keywords, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if id, ok := d.Dict.Lookup(w); ok {
			kwIDs = append(kwIDs, id)
		} else {
			unknown = append(unknown, w)
		}
	}
	if len(unknown) > 0 {
		fmt.Fprintf(stdout, "warning: keywords not in corpus vocabulary: %s\n", strings.Join(unknown, ", "))
	}
	query := dataset.Query{Loc: loc, Keywords: textctx.NewSet(kwIDs...)}

	places, err := d.Retrieve(query, *bigK)
	if err != nil {
		return err
	}
	if len(places) <= *k {
		return fmt.Errorf("retrieved only %d places; need more than k=%d", len(places), *k)
	}

	ss, err := core.ComputeScores(loc, places, core.ScoreOptions{
		Gamma:   *gamma,
		Spatial: core.SpatialSquaredGrid,
	})
	if err != nil {
		return err
	}
	params := core.Params{K: *k, Lambda: *lambda, Gamma: *gamma}

	sel, err := core.Select(core.Algorithm(*algo), ss, params)
	if err != nil {
		return err
	}

	b := ss.Evaluate(sel.Indices, *lambda)
	fmt.Fprintf(stdout, "query q=%v keywords=%q K=%d k=%d λ=%.2f γ=%.2f algo=%s\n",
		loc, *keywords, *bigK, *k, *lambda, *gamma, *algo)
	fmt.Fprintf(stdout, "HPF(R) = %.2f  (rF part %.2f, pC part %.2f, pS part %.2f)\n\n",
		b.Total, b.Rel, b.PC, b.PS)
	fmt.Fprintf(stdout, "%-4s %-14s %-18s %-6s %s\n", "rank", "place", "location", "rF", "context (first items)")
	for rank, idx := range sel.Indices {
		p := ss.Places[idx]
		ctx := p.Context.Words(d.Dict)
		if len(ctx) > 4 {
			ctx = ctx[:4]
		}
		fmt.Fprintf(stdout, "%-4d %-14s %-18s %-6.3f %s\n",
			rank+1, p.ID, fmt.Sprintf("(%.2f, %.2f)", p.Loc.X, p.Loc.Y), p.Rel,
			strings.Join(ctx, ", "))
	}
	return nil
}

func loadOrGenerate(path string) (*dataset.Dataset, error) {
	if path == "" {
		cfg := dataset.DBpediaLike(7)
		cfg.Places = 1500
		return dataset.Generate(cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.Load(f)
}
