package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigureSmall(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "small", "-fig", "fig9b"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fig9b", "squared_err", "radial_err"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var out bytes.Buffer
	if err := run([]string{"-scale", "small", "-fig", "fig12a", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig12a") {
		t.Error("stdout missing table")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "bogus"}, &out); err == nil {
		t.Error("bogus scale accepted")
	}
	if err := run([]string{"-scale", "small", "-fig", "fig99"}, &out); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-scale", "small", "-fig", "fig9b", "-out", "/nonexistent-dir/x.txt"}, &out); err == nil {
		t.Error("unwritable output accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-scale", "small", "-fig", "fig9b", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig9b.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "squared_err") {
		t.Errorf("csv content: %s", data)
	}
}
