// Command experiments regenerates the paper's evaluation figures
// (Section 9) on the synthetic workloads, printing one text table per
// figure panel.
//
// Usage:
//
//	experiments [-fig all|fig7a|fig7b|...|ablations] [-scale full|small] [-out report.txt]
//
// The "full" scale mirrors the paper's parameter ranges (K up to 1000,
// |p| up to 400, |G| 36..196, k 5..20); "small" is a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
)

// writeCSV writes one experiment's table as <dir>/<name>.csv.
func writeCSV(dir, name string, tbl *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.FprintCSV(f)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fig := fs.String("fig", "all", "experiment to run: all, or one of "+strings.Join(bench.Names(), ", "))
	scale := fs.String("scale", "full", "workload scale: full (paper ranges) or small (smoke)")
	out := fs.String("out", "", "also write the report to this file")
	csvDir := fs.String("csv", "", "also write one CSV file per experiment into this directory")
	plot := fs.Bool("plot", false, "render each experiment as terminal bar charts after its table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sc bench.Scale
	switch *scale {
	case "full":
		sc = bench.FullScale()
	case "small":
		sc = bench.SmallScale()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	fmt.Fprintf(w, "Proportionality in Spatial Keyword Search — experiment report\n")
	fmt.Fprintf(w, "scale=%s queries=%d places=%d generated=%s\n\n",
		*scale, sc.Queries, sc.Places, time.Now().Format(time.RFC3339))

	start := time.Now()
	env, err := bench.NewEnv(sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "environment ready in %.1fs (DB: %s | YG: %s)\n\n",
		time.Since(start).Seconds(), env.DB.Graph.Stats(), env.YG.Graph.Stats())

	names := bench.Names()
	if *fig != "all" {
		names = []string{*fig}
	}
	for _, name := range names {
		t0 := time.Now()
		tbl, err := env.Run(name)
		if err != nil {
			return err
		}
		tbl.Fprint(w)
		if *plot {
			tbl.FprintChart(w, 40)
		}
		fmt.Fprintf(w, "(%s took %.1fs)\n\n", name, time.Since(t0).Seconds())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, name, tbl); err != nil {
				return err
			}
		}
	}
	return nil
}
